//! The scenario runner: builds the terminal population, drives the
//! frame-synchronous simulation loop and produces a [`RunReport`].

use crate::cell::Cell;
use crate::columns::TerminalColumns;
use crate::config::SimConfig;
use crate::protocols::{ProtocolKind, UplinkMac};
use crate::system::SystemWorld;
use crate::terminal::{FrameTraffic, Terminal};
use charisma_des::RngStreams;
use charisma_metrics::RunMetrics;
use charisma_traffic::{TerminalClass, TerminalId};
use serde::{Deserialize, Serialize};

/// The outcome of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Which protocol was simulated.
    pub protocol: ProtocolKind,
    /// Whether the base-station request queue was enabled.
    pub request_queue: bool,
    /// Number of voice terminals.
    pub num_voice: u32,
    /// Number of data terminals.
    pub num_data: u32,
    /// Master seed of the run.
    pub seed: u64,
    /// The collected metrics.
    pub metrics: RunMetrics,
}

impl RunReport {
    /// Voice packet loss rate `P_loss`.
    pub fn voice_loss_rate(&self) -> f64 {
        self.metrics.voice_loss_rate()
    }

    /// Data throughput δ in packets per frame.
    pub fn data_throughput_per_frame(&self) -> f64 {
        self.metrics.data_throughput_per_frame()
    }

    /// Data throughput per data terminal per frame (the per-user operating
    /// point used for the paper's (delay, throughput) QoS capacity).
    pub fn data_throughput_per_user(&self) -> f64 {
        if self.num_data == 0 {
            0.0
        } else {
            self.data_throughput_per_frame() / self.num_data as f64
        }
    }

    /// Mean data access delay in seconds.
    pub fn data_delay_secs(&self) -> f64 {
        self.metrics.data_delay_secs()
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<10} queue={} Nv={:>3} Nd={:>3}  Ploss={:.4}  delta={:.3} pkt/frame  Dd={:.3} s",
            self.protocol.label(),
            if self.request_queue { "yes" } else { "no " },
            self.num_voice,
            self.num_data,
            self.voice_loss_rate(),
            self.data_throughput_per_frame(),
            self.data_delay_secs(),
        )
    }
}

/// A fully built simulation, ready to run.
///
/// ```
/// use charisma::{ProtocolKind, Scenario, SimConfig};
///
/// let mut config = SimConfig::quick_test();
/// config.num_voice = 10;
/// config.measured_frames = 2_000;
/// let report = Scenario::new(config).run(ProtocolKind::Charisma);
/// assert!(report.voice_loss_rate() <= 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct Scenario {
    config: SimConfig,
}

impl Scenario {
    /// Creates a scenario after validating the configuration.
    pub fn new(config: SimConfig) -> Self {
        config.validate();
        Scenario { config }
    }

    /// The scenario configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Builds the terminal population: voice terminals first (ids
    /// `0..num_voice`), then data terminals.  Identical across protocols for
    /// a given seed — the "common simulation platform" property.  Traffic
    /// sample paths (talkspurts, data bursts) are draw-for-draw identical
    /// across protocols; under the default lazy channel evaluation the
    /// fading paths are statistically equivalent but their realised draws
    /// depend on when each protocol samples the SNR (use
    /// `ChannelMode::Eager` for exact channel pairing).
    fn build_terminals(&self, streams: &RngStreams) -> Vec<Terminal> {
        let clock = self.config.clock();
        (0..self.config.num_voice + self.config.num_data)
            .map(|i| {
                let class = if i < self.config.num_voice {
                    TerminalClass::Voice
                } else {
                    TerminalClass::Data
                };
                let mut terminal = Terminal::new(
                    TerminalId(i),
                    class,
                    clock,
                    self.config.voice_source,
                    self.config.data_source,
                    self.config.channel,
                    self.config.channel_mode,
                    &self.config.speed,
                    streams,
                );
                // A load ramp keeps the tail of the voice population dormant
                // until its activation frame (see [`crate::config::LoadRamp`]).
                if let Some(ramp) = &self.config.ramp {
                    if class == TerminalClass::Voice && i >= ramp.initial_voice {
                        terminal.set_active_from_frame(ramp.activation_frame);
                    }
                }
                terminal
            })
            .collect()
    }

    /// Runs the scenario under the given protocol and returns the report.
    ///
    /// A configuration with a multi-cell [`crate::config::SystemConfig`]
    /// routes to the [`SystemWorld`] runner (one MAC instance per cell);
    /// otherwise the paper's implicit single cell runs on the historical
    /// code path, bit for bit.
    pub fn run(&self, protocol: ProtocolKind) -> RunReport {
        if self.config.system.is_some() {
            return SystemWorld::new(self.config.clone(), protocol).run();
        }
        let mut mac = protocol.build(&self.config);
        self.run_with(mac.as_mut())
    }

    /// Runs the single-cell scenario with an externally constructed protocol
    /// instance (useful for ablations that tweak protocol internals).
    /// Multi-cell configurations need one MAC instance per cell — use
    /// [`Scenario::run`].
    pub fn run_with(&self, mac: &mut dyn UplinkMac) -> RunReport {
        let config = &self.config;
        assert!(
            config.system.is_none(),
            "run_with drives the single-cell loop; multi-cell configs go through Scenario::run"
        );
        // The DOMAIN_PROTOCOL entity space is split between terminals
        // (upper half, mirrored indices) and cells (counting down from
        // u32::MAX): the two sub-ranges stay disjoint as long as the
        // population plus the cell count fits below 2^31 (see the
        // stream-derivation table in ARCHITECTURE.md).  The strict bound
        // leaves room for this loop's single implicit cell.
        debug_assert!(
            config.num_voice as u64 + (config.num_data as u64) < 0x8000_0000,
            "terminal population + cell count must stay below 2^31 to keep \
             DOMAIN_PROTOCOL speed streams and cell streams disjoint"
        );
        let streams = RngStreams::new(config.seed);
        let terminals = self.build_terminals(&streams);
        // The implicit single cell: every terminal attached, cell index 0
        // (which derives the historical estimator / base-station streams).
        let mut cell = Cell::new(
            config,
            &streams,
            0,
            terminals.iter().map(|t| t.id()).collect(),
        );
        // Decompose the construction records into the structure-of-arrays
        // store the frame loop sweeps over.
        let mut columns =
            TerminalColumns::with_capacity(config.clock(), config.channel_mode, terminals.len());
        for terminal in terminals {
            columns.push(terminal);
        }

        let mut traffic: Vec<FrameTraffic> = vec![FrameTraffic::default(); columns.len()];
        let total = config.total_frames();
        // Deadline drops are attributed to the frame in which the deadline
        // expires, one voice-packet period after generation; start counting
        // them that much later than `generated` so a drop is never counted
        // for a packet generated during warm-up (which would let the measured
        // loss rate exceed 100 % at saturation).
        let drop_grace = config.clock().frames_per(config.voice_source.deadline);

        for frame in 0..total {
            let measuring = frame >= config.warmup_frames;
            let measuring_drops = frame >= config.warmup_frames + drop_grace;

            // Traffic and channel advance, deadline drops are detected here —
            // one batched columnar sweep that also accumulates the
            // population-wide totals the run metrics need.
            let totals = columns.begin_frame_all(frame, &mut traffic);
            if measuring {
                let metrics = cell.metrics_mut();
                metrics.voice.generated += totals.voice_generated;
                if measuring_drops {
                    metrics.voice.dropped_deadline += totals.voice_dropped;
                }
                metrics.data.arrived += totals.data_arrived;
            }

            cell.step(frame, config, measuring, &traffic, &mut columns, mac);
        }

        RunReport {
            protocol: mac.kind(),
            request_queue: config.request_queue,
            num_voice: config.num_voice,
            num_data: config.num_data,
            seed: config.seed,
            metrics: cell.into_metrics(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(num_voice: u32, num_data: u32) -> SimConfig {
        let mut cfg = SimConfig::quick_test();
        cfg.num_voice = num_voice;
        cfg.num_data = num_data;
        cfg.warmup_frames = 400;
        cfg.measured_frames = 4_000;
        cfg
    }

    #[test]
    fn every_protocol_completes_a_small_run() {
        let cfg = small_config(10, 2);
        let scenario = Scenario::new(cfg);
        for p in ProtocolKind::ALL {
            let report = scenario.run(p);
            assert_eq!(report.protocol, p);
            assert!(report.metrics.frames > 0);
            assert!(
                report.voice_loss_rate() >= 0.0 && report.voice_loss_rate() <= 1.0,
                "{p}"
            );
            assert!(
                report.metrics.voice.generated > 0,
                "{p} generated no voice packets"
            );
        }
    }

    #[test]
    fn runs_are_reproducible_for_the_same_seed() {
        let cfg = small_config(8, 1);
        let scenario = Scenario::new(cfg);
        let a = scenario.run(ProtocolKind::Charisma);
        let b = scenario.run(ProtocolKind::Charisma);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_change_the_outcome() {
        let mut cfg = small_config(20, 2);
        let a = Scenario::new(cfg.clone()).run(ProtocolKind::DTdmaFr);
        cfg.seed ^= 0xABCD;
        let b = Scenario::new(cfg).run(ProtocolKind::DTdmaFr);
        assert_ne!(a.metrics, b.metrics);
    }

    #[test]
    fn light_load_has_low_voice_loss_for_charisma() {
        let cfg = small_config(10, 0);
        let report = Scenario::new(cfg).run(ProtocolKind::Charisma);
        assert!(
            report.voice_loss_rate() < 0.02,
            "CHARISMA at light load should have (near) zero loss, got {}",
            report.voice_loss_rate()
        );
    }

    #[test]
    fn heavy_load_saturates_and_causes_losses() {
        let mut cfg = small_config(150, 0);
        cfg.measured_frames = 4_000;
        let report = Scenario::new(cfg).run(ProtocolKind::DTdmaFr);
        assert!(
            report.voice_loss_rate() > 0.05,
            "D-TDMA/FR at 150 voice users must be far beyond capacity, got {}",
            report.voice_loss_rate()
        );
    }

    #[test]
    fn data_only_scenario_delivers_packets() {
        let cfg = small_config(1, 4);
        let report = Scenario::new(cfg).run(ProtocolKind::Charisma);
        assert!(report.metrics.data.delivered > 0, "no data delivered");
        assert!(report.data_delay_secs() >= 0.0);
    }

    #[test]
    fn voice_accounting_is_consistent() {
        let cfg = small_config(30, 0);
        for p in ProtocolKind::ALL {
            let report = Scenario::new(cfg.clone()).run(p);
            let v = &report.metrics.voice;
            // Delivered + lost can never exceed generated plus a small carry-over
            // from packets generated during warm-up but delivered after it.
            let slack = 4 * 8; // generously: one packet per terminal boundary effect
            assert!(
                v.delivered + v.lost() <= v.generated + slack,
                "{p}: delivered {} + lost {} vs generated {}",
                v.delivered,
                v.lost(),
                v.generated
            );
        }
    }

    #[test]
    fn load_ramp_withholds_traffic_until_activation() {
        use crate::config::LoadRamp;
        let mut cfg = small_config(30, 0);
        let full = Scenario::new(cfg.clone()).run(ProtocolKind::Charisma);
        cfg.ramp = Some(LoadRamp {
            initial_voice: 10,
            // Activate the remaining 20 voice users halfway through the
            // measured window.
            activation_frame: cfg.warmup_frames + cfg.measured_frames / 2,
        });
        let ramped = Scenario::new(cfg.clone()).run(ProtocolKind::Charisma);
        assert!(
            ramped.metrics.voice.generated < full.metrics.voice.generated,
            "ramped run must offer less voice traffic ({} vs {})",
            ramped.metrics.voice.generated,
            full.metrics.voice.generated
        );
        // Rough shape: 10 users all along + 20 users for half the window
        // ≈ 2/3 of the always-active traffic.
        let ratio = ramped.metrics.voice.generated as f64 / full.metrics.voice.generated as f64;
        assert!((0.5..0.85).contains(&ratio), "traffic ratio {ratio}");
        // Determinism is preserved under a ramp.
        let again = Scenario::new(cfg).run(ProtocolKind::Charisma);
        assert_eq!(ramped, again);
    }

    #[test]
    fn per_user_throughput_is_bounded_by_offered_load() {
        let cfg = small_config(0, 6);
        let report = Scenario::new(cfg).run(ProtocolKind::Charisma);
        // Each data terminal offers 0.25 packets per frame on average; the
        // delivered per-user throughput cannot exceed it by more than noise.
        assert!(
            report.data_throughput_per_user() < 0.40,
            "got {}",
            report.data_throughput_per_user()
        );
    }
}
