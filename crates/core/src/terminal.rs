//! Per-terminal state shared by all six protocols.
//!
//! A [`Terminal`] bundles everything that belongs to one mobile device and is
//! *protocol independent*: its traffic source and transmit buffers, its
//! fading channel, and its private random streams for contention decisions
//! and packet-error draws.  Protocol-specific state (reservations, pending
//! requests, grants) lives in the protocol implementations, keyed by
//! [`TerminalId`], so that the exact same terminal population — same fading
//! sample paths, same talkspurts, same data bursts — is presented to every
//! protocol under comparison.

use charisma_des::{FrameClock, RngStreams, SimTime, StreamId, Xoshiro256StarStar};
use charisma_radio::{ChannelConfig, ChannelMode, CombinedChannel, Mobility, SpeedProfile};
use charisma_traffic::{
    buffer::VoicePacket, DataBuffer, DataSource, DataSourceConfig, TerminalClass, TerminalId,
    VoiceBuffer, VoiceSource, VoiceSourceConfig,
};
use serde::{Deserialize, Serialize};

/// What happened at a terminal at the start of a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FrameTraffic {
    /// A new talkspurt started (the terminal must request an uplink grant).
    pub talkspurt_started: bool,
    /// The current talkspurt ended (any reservation should be released).
    pub talkspurt_ended: bool,
    /// A voice packet was generated at this boundary.
    pub voice_packet_generated: bool,
    /// Number of data packets that arrived at this boundary.
    pub data_packets_arrived: u32,
    /// Voice packets dropped at this boundary because their deadline expired.
    pub voice_packets_dropped: u32,
}

/// One mobile terminal.
#[derive(Debug, Clone)]
pub struct Terminal {
    id: TerminalId,
    class: TerminalClass,
    clock: FrameClock,
    voice_source: Option<VoiceSource>,
    voice_buffer: VoiceBuffer,
    data_source: Option<DataSource>,
    data_buffer: DataBuffer,
    channel: CombinedChannel,
    /// How the channel is advanced along the frame grid (lazy by default).
    channel_mode: ChannelMode,
    /// The SNR sampled at a given instant, memoised so that every consumer of
    /// one frame's channel state (capacity, error probability, CSI polling)
    /// shares a single evaluation.
    snr_cache: Option<(SimTime, f64)>,
    /// Randomness for permission-probability and slot-selection decisions.
    contention_rng: Xoshiro256StarStar,
    /// Randomness for packet-error draws of this terminal's transmissions.
    phy_rng: Xoshiro256StarStar,
    in_talkspurt: bool,
    /// First frame at which the terminal participates (0 for all terminals
    /// except those activated mid-run by a load ramp).  A dormant terminal
    /// advances its sources — keeping RNG streams aligned with an
    /// always-active population — but discards the traffic and never
    /// contends.
    active_from_frame: u64,
}

impl Terminal {
    /// Builds a terminal of the given class with all of its random streams
    /// derived from the scenario seed.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: TerminalId,
        class: TerminalClass,
        clock: FrameClock,
        voice_cfg: VoiceSourceConfig,
        data_cfg: DataSourceConfig,
        channel_cfg: ChannelConfig,
        channel_mode: ChannelMode,
        speed: &SpeedProfile,
        streams: &RngStreams,
    ) -> Self {
        let idx = id.index();
        let mut speed_rng =
            streams.stream(StreamId::new(StreamId::DOMAIN_PROTOCOL, idx ^ 0x8000_0000));
        let mobility = Mobility::new(speed.sample(&mut speed_rng));
        let channel = CombinedChannel::new(
            channel_cfg,
            mobility,
            streams.stream(StreamId::new(StreamId::DOMAIN_CHANNEL, idx)),
        );
        let (voice_source, data_source) = match class {
            TerminalClass::Voice => (
                Some(VoiceSource::new(
                    voice_cfg,
                    clock,
                    streams.stream(StreamId::new(StreamId::DOMAIN_VOICE, idx)),
                )),
                None,
            ),
            TerminalClass::Data => (
                None,
                Some(DataSource::new(
                    data_cfg,
                    clock,
                    streams.stream(StreamId::new(StreamId::DOMAIN_DATA, idx)),
                )),
            ),
        };
        let in_talkspurt = voice_source
            .as_ref()
            .map(|s| s.is_talking())
            .unwrap_or(false);
        Terminal {
            id,
            class,
            clock,
            voice_source,
            voice_buffer: VoiceBuffer::new(),
            data_source,
            data_buffer: DataBuffer::new(),
            channel,
            channel_mode,
            snr_cache: None,
            contention_rng: streams.stream(StreamId::new(StreamId::DOMAIN_CONTENTION, idx)),
            phy_rng: streams.stream(StreamId::new(StreamId::DOMAIN_PHY, idx)),
            in_talkspurt,
            active_from_frame: 0,
        }
    }

    /// Defers the terminal's participation to `frame` (load-ramp scenarios):
    /// until then [`Terminal::begin_frame`] reports no traffic, the transmit
    /// buffers stay empty and the terminal never appears in a talkspurt.
    pub fn set_active_from_frame(&mut self, frame: u64) {
        self.active_from_frame = frame;
    }

    /// Whether the terminal participates in the given frame (always true
    /// unless a load ramp deferred its activation).
    pub fn is_active_at(&self, frame_index: u64) -> bool {
        frame_index >= self.active_from_frame
    }

    /// The terminal identifier.
    pub fn id(&self) -> TerminalId {
        self.id
    }

    /// The terminal's service class.
    pub fn class(&self) -> TerminalClass {
        self.class
    }

    /// Whether the terminal is currently in a talkspurt.
    pub fn in_talkspurt(&self) -> bool {
        self.in_talkspurt
    }

    /// Number of voice packets waiting in the transmit buffer.
    pub fn voice_backlog(&self) -> usize {
        self.voice_buffer.len()
    }

    /// Number of data packets waiting in the transmit buffer.
    pub fn data_backlog(&self) -> u64 {
        self.data_buffer.len()
    }

    /// Whether the terminal has anything to send.
    pub fn has_backlog(&self) -> bool {
        !self.voice_buffer.is_empty() || !self.data_buffer.is_empty()
    }

    /// Earliest deadline among buffered voice packets.
    pub fn earliest_voice_deadline(&self) -> Option<SimTime> {
        self.voice_buffer.earliest_deadline()
    }

    /// Arrival time of the oldest buffered data packet.
    pub fn oldest_data_arrival(&self) -> Option<SimTime> {
        self.data_buffer.head_arrival()
    }

    /// Mutable access to the voice buffer (used by the transmission engine).
    pub fn voice_buffer_mut(&mut self) -> &mut VoiceBuffer {
        &mut self.voice_buffer
    }

    /// Mutable access to the data buffer (used by the transmission engine).
    pub fn data_buffer_mut(&mut self) -> &mut DataBuffer {
        &mut self.data_buffer
    }

    /// The terminal's true instantaneous SNR at time `t` (advances the fading
    /// processes as needed).
    ///
    /// In [`ChannelMode::Lazy`] (the default) the value is memoised per
    /// instant, so `FrameWorld::capacity`, the error-probability draw and CSI
    /// polling all share one channel evaluation per terminal per frame, and
    /// the channel itself is advanced in one coalesced step covering every
    /// frame the terminal sat idle.  In [`ChannelMode::Eager`] the SNR is
    /// recomputed on every call, reproducing the pre-optimisation cost.
    pub fn true_snr_db(&mut self, t: SimTime) -> f64 {
        match self.channel_mode {
            ChannelMode::Lazy => {
                if let Some((at, snr)) = self.snr_cache {
                    if at == t {
                        return snr;
                    }
                }
                let snr = self.channel.snr_db_at(t);
                self.snr_cache = Some((t, snr));
                snr
            }
            ChannelMode::Eager => self.channel.snr_db_at(t),
        }
    }

    /// The terminal's mobility (speed / Doppler) parameters.
    pub fn mobility(&self) -> &Mobility {
        self.channel.mobility()
    }

    /// Re-points the channel's mean SNR (dB).  The multi-cell system layer
    /// calls this every frame with the path-loss + site-shadowing mean for
    /// the terminal's current distance to its serving base station; the
    /// fading processes (and the per-frame SNR cache, which is keyed by
    /// sampling instant) are untouched.
    pub fn set_mean_snr_db(&mut self, mean_snr_db: f64) {
        self.channel.set_mean_snr_db(mean_snr_db);
    }

    /// Drops every buffered voice packet (the link interruption of a hard
    /// handoff, or a refused drop-on-full admission) and returns how many
    /// were lost.  Data packets are unaffected — they are retransmitted
    /// through the new cell.
    pub fn drop_buffered_voice(&mut self) -> u32 {
        let n = self.voice_buffer.len() as u32;
        self.voice_buffer.clear();
        n
    }

    /// The contention random stream (permission probability, slot choice).
    pub fn contention_rng(&mut self) -> &mut Xoshiro256StarStar {
        &mut self.contention_rng
    }

    /// The packet-error random stream.
    pub fn phy_rng(&mut self) -> &mut Xoshiro256StarStar {
        &mut self.phy_rng
    }

    /// Advances traffic across the boundary that starts `frame_index`,
    /// updating the buffers, and reports what happened.  Deadline-expired
    /// voice packets are dropped here (and reported), exactly once per frame.
    pub fn begin_frame(&mut self, frame_index: u64) -> FrameTraffic {
        let now = self.clock.frame_start(frame_index);
        // Lazy mode leaves the channel untouched here: it is advanced (with a
        // coalesced dt) the first time this frame's SNR is sampled, so idle
        // terminals skip channel work entirely.
        if self.channel_mode == ChannelMode::Eager {
            self.channel.advance_to_eager(now);
            self.snr_cache = None;
        }

        let mut out = FrameTraffic {
            // Deadline enforcement happens before new packets arrive so a packet
            // generated at this boundary can never be dropped at the same boundary.
            voice_packets_dropped: self.voice_buffer.drop_expired(now) as u32,
            ..FrameTraffic::default()
        };

        if let Some(src) = &mut self.voice_source {
            let activity = src.on_frame_start(frame_index);
            self.in_talkspurt = src.is_talking();
            out.talkspurt_started = activity.talkspurt_started;
            out.talkspurt_ended = activity.talkspurt_ended;
            if activity.packet_generated {
                let deadline = src.deadline_for(frame_index);
                self.voice_buffer.push(VoicePacket {
                    generated_at: now,
                    deadline,
                });
                out.voice_packet_generated = true;
            }
        }

        if let Some(src) = &mut self.data_source {
            let arrived = src.on_frame_start(frame_index);
            if arrived > 0 {
                self.data_buffer.push_burst(now, arrived);
                out.data_packets_arrived = arrived;
            }
        }

        // A dormant terminal (activated mid-run by a load ramp) advances its
        // sources exactly like an active one so the per-terminal RNG streams
        // stay aligned, but its traffic is discarded: nothing is buffered,
        // nothing is reported, and it never looks like a contender.  From the
        // activation frame onward it behaves draw-for-draw like an
        // always-active twin — a terminal woken mid-talkspurt buffers that
        // talkspurt's remaining packets (and contends for them) immediately.
        if frame_index < self.active_from_frame {
            self.voice_buffer.clear();
            self.data_buffer.clear();
            self.in_talkspurt = false;
            return FrameTraffic::default();
        }

        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charisma_des::SimDuration;

    fn make(class: TerminalClass, seed: u64) -> Terminal {
        make_mode(class, seed, ChannelMode::Lazy)
    }

    fn make_mode(class: TerminalClass, seed: u64, mode: ChannelMode) -> Terminal {
        let streams = RngStreams::new(seed);
        Terminal::new(
            TerminalId(0),
            class,
            FrameClock::paper_default(),
            VoiceSourceConfig::default(),
            DataSourceConfig::default(),
            ChannelConfig::default(),
            mode,
            &SpeedProfile::Fixed(50.0),
            &streams,
        )
    }

    #[test]
    fn voice_terminal_generates_and_drops_packets() {
        let mut t = make(TerminalClass::Voice, 1);
        let mut generated = 0u64;
        let mut dropped = 0u64;
        for k in 0..80_000u64 {
            let tr = t.begin_frame(k);
            generated += tr.voice_packet_generated as u64;
            dropped += tr.voice_packets_dropped as u64;
            assert_eq!(
                tr.data_packets_arrived, 0,
                "voice terminal must not produce data"
            );
        }
        assert!(
            generated > 1_000,
            "expected many voice packets, got {generated}"
        );
        // Nothing is ever transmitted in this test, so every packet must
        // eventually be dropped at its deadline (modulo those still queued).
        assert!(
            dropped >= generated - 2,
            "generated {generated}, dropped {dropped}"
        );
        assert!(t.voice_backlog() <= 2);
    }

    #[test]
    fn data_terminal_accumulates_backlog() {
        let mut t = make(TerminalClass::Data, 2);
        let mut arrived = 0u64;
        for k in 0..40_000u64 {
            let tr = t.begin_frame(k);
            arrived += tr.data_packets_arrived as u64;
            assert!(!tr.voice_packet_generated);
        }
        assert!(arrived > 1_000, "expected data arrivals, got {arrived}");
        assert_eq!(
            t.data_backlog(),
            arrived,
            "nothing was served, backlog must equal arrivals"
        );
        assert!(t.has_backlog());
    }

    #[test]
    fn channel_is_queryable_at_frame_times() {
        let mut t = make(TerminalClass::Voice, 3);
        t.begin_frame(0);
        let s0 = t.true_snr_db(SimTime::ZERO);
        let s1 = t.true_snr_db(SimTime::ZERO + SimDuration::from_micros(2_500));
        assert!(s0.is_finite() && s1.is_finite());
    }

    #[test]
    fn talkspurt_flag_tracks_source() {
        let mut t = make(TerminalClass::Voice, 4);
        let mut toggles = 0;
        let mut last = t.in_talkspurt();
        for k in 0..200_000u64 {
            t.begin_frame(k);
            if t.in_talkspurt() != last {
                toggles += 1;
                last = t.in_talkspurt();
            }
        }
        assert!(
            toggles > 50,
            "talkspurt state should toggle many times, saw {toggles}"
        );
    }

    #[test]
    fn identical_seeds_produce_identical_terminals() {
        let mut a = make(TerminalClass::Voice, 9);
        let mut b = make(TerminalClass::Voice, 9);
        for k in 0..5_000u64 {
            assert_eq!(a.begin_frame(k), b.begin_frame(k));
        }
        let t = SimTime::from_micros(5_000 * 2_500);
        assert_eq!(a.true_snr_db(t), b.true_snr_db(t));
    }

    #[test]
    fn snr_is_cached_within_an_instant_and_refreshed_across_frames() {
        let mut t = make(TerminalClass::Voice, 11);
        t.begin_frame(0);
        let at = SimTime::ZERO;
        let first = t.true_snr_db(at);
        // Repeated queries at the same instant must return the exact same
        // value without touching the channel RNG.
        for _ in 0..5 {
            assert_eq!(t.true_snr_db(at), first);
        }
        // A later frame re-samples the channel.
        t.begin_frame(1);
        let later = t.true_snr_db(SimTime::from_micros(2_500));
        assert_ne!(later, first, "a new frame must refresh the cached SNR");
        assert_eq!(t.true_snr_db(SimTime::from_micros(2_500)), later);
    }

    #[test]
    fn eager_and_lazy_terminals_see_statistically_similar_channels() {
        // The two modes draw different sample paths (documented one-time
        // trajectory change) but must agree on the channel statistics.
        let mean_snr = |mode: ChannelMode| -> f64 {
            let mut t = make_mode(TerminalClass::Voice, 12, mode);
            let mut acc = 0.0;
            let n = 40_000u64;
            for k in 0..n {
                t.begin_frame(k);
                // Sample only every 10th frame: in lazy mode the intervening
                // frames are coalesced into one AR(1) step.
                if k % 10 == 0 {
                    acc += t.true_snr_db(SimTime::from_micros(k * 2_500));
                }
            }
            acc / (n / 10) as f64
        };
        let eager = mean_snr(ChannelMode::Eager);
        let lazy = mean_snr(ChannelMode::Lazy);
        assert!(
            (eager - lazy).abs() < 1.0,
            "eager mean SNR {eager} dB vs lazy {lazy} dB"
        );
    }

    #[test]
    fn dormant_terminal_reports_nothing_then_wakes_up() {
        let mut t = make(TerminalClass::Voice, 21);
        t.set_active_from_frame(4_000);
        for k in 0..4_000u64 {
            assert!(!t.is_active_at(k));
            let tr = t.begin_frame(k);
            assert_eq!(tr, FrameTraffic::default(), "dormant frame {k} had traffic");
            assert!(!t.in_talkspurt());
            assert!(!t.has_backlog());
        }
        let mut generated = 0u64;
        for k in 4_000..80_000u64 {
            assert!(t.is_active_at(k));
            generated += t.begin_frame(k).voice_packet_generated as u64;
        }
        assert!(generated > 1_000, "woken terminal generated {generated}");
    }

    #[test]
    fn dormant_prefix_does_not_change_the_post_activation_sample_path() {
        // The whole point of advancing sources while dormant: after the
        // activation frame the terminal behaves draw-for-draw like an
        // always-active twin.
        let mut active = make(TerminalClass::Voice, 22);
        let mut ramped = make(TerminalClass::Voice, 22);
        ramped.set_active_from_frame(2_000);
        for k in 0..2_000u64 {
            let _ = active.begin_frame(k);
            let _ = ramped.begin_frame(k);
        }
        // Drain the always-active twin's backlog so the buffers agree.
        while active.voice_buffer_mut().pop().is_some() {}
        for k in 2_000..10_000u64 {
            assert_eq!(active.begin_frame(k), ramped.begin_frame(k), "frame {k}");
        }
    }

    #[test]
    fn different_terminal_ids_get_different_traffic() {
        let streams = RngStreams::new(7);
        let mk = |i: u32| {
            Terminal::new(
                TerminalId(i),
                TerminalClass::Voice,
                FrameClock::paper_default(),
                VoiceSourceConfig::default(),
                DataSourceConfig::default(),
                ChannelConfig::default(),
                ChannelMode::Lazy,
                &SpeedProfile::Fixed(50.0),
                &streams,
            )
        };
        let mut a = mk(0);
        let mut b = mk(1);
        let mut differing = 0;
        for k in 0..10_000u64 {
            if a.begin_frame(k) != b.begin_frame(k) {
                differing += 1;
            }
        }
        assert!(
            differing > 100,
            "two terminals should have distinct traffic, {differing} frames differed"
        );
    }
}
