//! Per-terminal construction: building one mobile device's protocol-
//! independent state from the scenario seed.
//!
//! A [`Terminal`] bundles everything that belongs to one mobile device and is
//! *protocol independent*: its traffic source and transmit buffers, its
//! fading channel, and its private random streams for contention decisions
//! and packet-error draws.  Protocol-specific state (reservations, pending
//! requests, grants) lives in the protocol implementations, keyed by
//! [`TerminalId`], so that the exact same terminal population — same fading
//! sample paths, same talkspurts, same data bursts — is presented to every
//! protocol under comparison.
//!
//! `Terminal` is a **construction record**: scenarios build terminals one by
//! one (seeding every RNG stream in the documented order), then push them
//! into a [`crate::columns::TerminalColumns`] store, which decomposes each
//! terminal into structure-of-arrays columns.  All per-frame behaviour —
//! source stepping, deadline expiry, fading advance, SNR sampling — lives on
//! the columnar store so the frame sweep runs over contiguous arrays instead
//! of 300-byte structs.

use charisma_des::{FrameClock, RngStreams, StreamId, Xoshiro256StarStar};
use charisma_radio::{
    ChannelConfig, ChannelMode, ChannelParts, CombinedChannel, Mobility, SpeedProfile,
};
use charisma_traffic::{
    DataBuffer, DataSource, DataSourceConfig, TerminalClass, TerminalId, VoiceBuffer, VoiceSource,
    VoiceSourceConfig,
};
use serde::{Deserialize, Serialize};

/// What happened at a terminal at the start of a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FrameTraffic {
    /// A new talkspurt started (the terminal must request an uplink grant).
    pub talkspurt_started: bool,
    /// The current talkspurt ended (any reservation should be released).
    pub talkspurt_ended: bool,
    /// A voice packet was generated at this boundary.
    pub voice_packet_generated: bool,
    /// Number of data packets that arrived at this boundary.
    pub data_packets_arrived: u32,
    /// Voice packets dropped at this boundary because their deadline expired.
    pub voice_packets_dropped: u32,
}

/// One mobile terminal, as built from the scenario seed.
///
/// Consumed by [`crate::columns::TerminalColumns::push`], which splits the
/// state into parallel columns for the batched per-frame sweep.
#[derive(Debug, Clone)]
pub struct Terminal {
    id: TerminalId,
    class: TerminalClass,
    clock: FrameClock,
    voice_source: Option<VoiceSource>,
    voice_buffer: VoiceBuffer,
    data_source: Option<DataSource>,
    data_buffer: DataBuffer,
    channel: CombinedChannel,
    /// How the channel is advanced along the frame grid (lazy by default).
    channel_mode: ChannelMode,
    /// Randomness for permission-probability and slot-selection decisions.
    contention_rng: Xoshiro256StarStar,
    /// Randomness for packet-error draws of this terminal's transmissions.
    phy_rng: Xoshiro256StarStar,
    in_talkspurt: bool,
    /// First frame at which the terminal participates (0 for all terminals
    /// except those activated mid-run by a load ramp).  A dormant terminal
    /// advances its sources — keeping RNG streams aligned with an
    /// always-active population — but discards the traffic and never
    /// contends.
    active_from_frame: u64,
}

/// A [`Terminal`] decomposed into the pieces the columnar store keeps in
/// parallel arrays.  Produced by [`Terminal::into_parts`].
pub(crate) struct TerminalParts {
    pub(crate) id: TerminalId,
    pub(crate) class: TerminalClass,
    pub(crate) clock: FrameClock,
    pub(crate) voice_source: Option<VoiceSource>,
    pub(crate) voice_buffer: VoiceBuffer,
    pub(crate) data_source: Option<DataSource>,
    pub(crate) data_buffer: DataBuffer,
    pub(crate) channel: ChannelParts,
    pub(crate) channel_mode: ChannelMode,
    pub(crate) contention_rng: Xoshiro256StarStar,
    pub(crate) phy_rng: Xoshiro256StarStar,
    pub(crate) in_talkspurt: bool,
    pub(crate) active_from_frame: u64,
}

impl Terminal {
    /// Builds a terminal of the given class with all of its random streams
    /// derived from the scenario seed.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: TerminalId,
        class: TerminalClass,
        clock: FrameClock,
        voice_cfg: VoiceSourceConfig,
        data_cfg: DataSourceConfig,
        channel_cfg: ChannelConfig,
        channel_mode: ChannelMode,
        speed: &SpeedProfile,
        streams: &RngStreams,
    ) -> Self {
        let idx = id.index();
        // Speed sampling borrows DOMAIN_PROTOCOL by mirroring the terminal
        // index into the upper half of the entity space (`idx ^ 0x8000_0000`);
        // per-cell base-station streams count down from `u32::MAX` in that
        // same half (`StreamId::cell_entity`).  The two sub-ranges collide
        // only when a terminal index reaches `0x7FFF_FFFF - cell`, so the
        // scheme is sound for populations below 2^31 terminals; see the
        // stream-derivation table in ARCHITECTURE.md.  Population-level
        // guards live in the scenario/system constructors; this one pins the
        // per-terminal half.
        debug_assert!(
            idx < 0x8000_0000,
            "terminal index {idx:#010x} would escape the reserved \
             DOMAIN_PROTOCOL speed-stream sub-range [0x8000_0000, 0xFFFF_FFFF]"
        );
        let mut speed_rng =
            streams.stream(StreamId::new(StreamId::DOMAIN_PROTOCOL, idx ^ 0x8000_0000));
        let mobility = Mobility::new(speed.sample(&mut speed_rng));
        let channel = CombinedChannel::new(
            channel_cfg,
            mobility,
            streams.stream(StreamId::new(StreamId::DOMAIN_CHANNEL, idx)),
        );
        let (voice_source, data_source) = match class {
            TerminalClass::Voice => (
                Some(VoiceSource::new(
                    voice_cfg,
                    clock,
                    streams.stream(StreamId::new(StreamId::DOMAIN_VOICE, idx)),
                )),
                None,
            ),
            TerminalClass::Data => (
                None,
                Some(DataSource::new(
                    data_cfg,
                    clock,
                    streams.stream(StreamId::new(StreamId::DOMAIN_DATA, idx)),
                )),
            ),
        };
        let in_talkspurt = voice_source
            .as_ref()
            .map(|s| s.is_talking())
            .unwrap_or(false);
        Terminal {
            id,
            class,
            clock,
            voice_source,
            voice_buffer: VoiceBuffer::new(),
            data_source,
            data_buffer: DataBuffer::new(),
            channel,
            channel_mode,
            contention_rng: streams.stream(StreamId::new(StreamId::DOMAIN_CONTENTION, idx)),
            phy_rng: streams.stream(StreamId::new(StreamId::DOMAIN_PHY, idx)),
            in_talkspurt,
            active_from_frame: 0,
        }
    }

    /// Defers the terminal's participation to `frame` (load-ramp scenarios):
    /// until then the columnar `begin_frame` reports no traffic, the transmit
    /// buffers stay empty and the terminal never appears in a talkspurt.
    pub fn set_active_from_frame(&mut self, frame: u64) {
        self.active_from_frame = frame;
    }

    /// Whether the terminal participates in the given frame (always true
    /// unless a load ramp deferred its activation).
    pub fn is_active_at(&self, frame_index: u64) -> bool {
        frame_index >= self.active_from_frame
    }

    /// The terminal identifier.
    pub fn id(&self) -> TerminalId {
        self.id
    }

    /// The terminal's service class.
    pub fn class(&self) -> TerminalClass {
        self.class
    }

    /// Whether the terminal is currently in a talkspurt.
    pub fn in_talkspurt(&self) -> bool {
        self.in_talkspurt
    }

    /// The terminal's mobility (speed / Doppler) parameters.
    pub fn mobility(&self) -> &Mobility {
        self.channel.mobility()
    }

    /// Re-points the channel's mean SNR (dB).  The multi-cell system layer
    /// calls this while placing terminals at construction time; once a
    /// terminal is pushed into a columnar store, updates go through
    /// `TerminalColumns`/`ColumnsView::set_mean_snr_db` instead.
    pub fn set_mean_snr_db(&mut self, mean_snr_db: f64) {
        self.channel.set_mean_snr_db(mean_snr_db);
    }

    /// Decomposes the terminal into the pieces stored columnar-ly.
    pub(crate) fn into_parts(self) -> TerminalParts {
        TerminalParts {
            id: self.id,
            class: self.class,
            clock: self.clock,
            voice_source: self.voice_source,
            voice_buffer: self.voice_buffer,
            data_source: self.data_source,
            data_buffer: self.data_buffer,
            channel: self.channel.into_parts(),
            channel_mode: self.channel_mode,
            contention_rng: self.contention_rng,
            phy_rng: self.phy_rng,
            in_talkspurt: self.in_talkspurt,
            active_from_frame: self.active_from_frame,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charisma_des::SimTime;

    fn make(class: TerminalClass, seed: u64) -> Terminal {
        let streams = RngStreams::new(seed);
        Terminal::new(
            TerminalId(0),
            class,
            FrameClock::paper_default(),
            VoiceSourceConfig::default(),
            DataSourceConfig::default(),
            ChannelConfig::default(),
            ChannelMode::Lazy,
            &SpeedProfile::Fixed(50.0),
            &streams,
        )
    }

    #[test]
    fn construction_sets_class_and_identity() {
        let v = make(TerminalClass::Voice, 1);
        assert_eq!(v.id(), TerminalId(0));
        assert_eq!(v.class(), TerminalClass::Voice);
        assert!(v.is_active_at(0));
        let d = make(TerminalClass::Data, 1);
        assert_eq!(d.class(), TerminalClass::Data);
        assert!(!d.in_talkspurt(), "data terminals never talk");
    }

    #[test]
    fn load_ramp_defers_activation() {
        let mut t = make(TerminalClass::Voice, 2);
        t.set_active_from_frame(4_000);
        assert!(!t.is_active_at(0));
        assert!(!t.is_active_at(3_999));
        assert!(t.is_active_at(4_000));
    }

    #[test]
    fn into_parts_preserves_identity_and_streams() {
        let mut t = make(TerminalClass::Voice, 3);
        t.set_active_from_frame(17);
        t.set_mean_snr_db(21.5);
        let talk = t.in_talkspurt();
        let parts = t.into_parts();
        assert_eq!(parts.id, TerminalId(0));
        assert_eq!(parts.class, TerminalClass::Voice);
        assert_eq!(parts.active_from_frame, 17);
        assert_eq!(parts.in_talkspurt, talk);
        assert_eq!(parts.channel.config.mean_snr_db, 21.5);
        assert!(parts.voice_source.is_some());
        assert!(parts.data_source.is_none());
        assert_eq!(parts.channel.now, SimTime::ZERO);
    }

    #[test]
    fn mobility_speed_comes_from_the_reserved_protocol_stream() {
        // Two seeds give different sampled speeds under a random profile,
        // pinning that the speed draw really consumes the mirrored
        // DOMAIN_PROTOCOL stream (a fixed profile ignores the draw).
        let mk = |seed: u64| {
            let streams = RngStreams::new(seed);
            Terminal::new(
                TerminalId(0),
                TerminalClass::Voice,
                FrameClock::paper_default(),
                VoiceSourceConfig::default(),
                DataSourceConfig::default(),
                ChannelConfig::default(),
                ChannelMode::Lazy,
                &SpeedProfile::Uniform {
                    min_kmh: 10.0,
                    max_kmh: 90.0,
                },
                &streams,
            )
        };
        let a = mk(100).mobility().speed_kmh;
        let b = mk(101).mobility().speed_kmh;
        assert_ne!(a, b, "speed should depend on the scenario seed");
    }
}
