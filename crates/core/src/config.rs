//! Scenario configuration (the reproduction's "Table 1").
//!
//! The paper's Table 1 is only partially legible in the available source
//! text, so the concrete values below are derived from constraints stated in
//! the prose: a 320 kHz TDMA carrier, 8 kbps speech packetised every 20 ms
//! with a 20 ms deadline, a 2.5 ms frame, a request subframe slightly larger
//! than the information subframe, and protocol capacities in the ranges the
//! figures report (≈ 60 voice users for D-TDMA/FR, ≈ 100 / 160 for CHARISMA
//! without / with a request queue at the 1 % loss threshold).  Every value is
//! printed by the `table1` benchmark binary and recorded in EXPERIMENTS.md.

use charisma_des::{FrameClock, SimDuration, SplitMix64};
use charisma_phy::{AdaptivePhyConfig, FixedPhyConfig};
use charisma_radio::{
    ChannelConfig, ChannelMode, CsiEstimatorConfig, PathLossConfig, SpeedProfile,
};
use charisma_traffic::{DataSourceConfig, VoiceSourceConfig};
use serde::{Deserialize, Serialize};

/// Static frame-structure parameters shared by the six protocols.
///
/// All counts refer to one 2.5 ms uplink frame.  Protocols that do not use a
/// dedicated request subframe (DRMA, RMAV) convert that bandwidth into extra
/// information slots, which is reflected in their per-protocol slot counts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameStructure {
    /// Frame duration (2.5 ms in the paper).
    pub frame_duration: SimDuration,
    /// Number of information slots `N_i` in the static-frame protocols
    /// (D-TDMA/FR, D-TDMA/VR, RAMA, CHARISMA).
    pub info_slots: u32,
    /// Scheduling granularity of the variable-throughput protocols: the
    /// announcement schedule can subdivide one information slot into at most
    /// this many sub-slots, so a voice packet never occupies less than
    /// `1/subslots_per_slot` of a slot even at the densest transmission mode.
    pub subslots_per_slot: u32,
    /// Number of request minislots `N_r` (D-TDMA/FR, D-TDMA/VR, CHARISMA).
    /// The paper requires `N_r` to be slightly larger than `N_i`.
    pub request_slots: u32,
    /// Number of pilot-symbol / CSI-polling slots `N_b` (CHARISMA only).
    pub pilot_slots: u32,
    /// Number of auction slots `N_a` per frame (RAMA only).
    pub rama_auction_slots: u32,
    /// Total information slots `N_k` per frame for DRMA (which has no fixed
    /// request subframe, hence more information slots than `N_i`).
    pub drma_info_slots: u32,
    /// Number of request minislots an unassigned DRMA information slot is
    /// converted into (`N_x`).
    pub drma_minislots: u32,
    /// Information slots per frame for RMAV (no fixed request subframe, one
    /// competitive minislot per frame).
    pub rmav_info_slots: u32,
    /// Maximum information slots a single data winner may claim in RMAV
    /// (`P_max`, 10 in the paper).
    pub rmav_max_data_slots: u32,
}

impl Default for FrameStructure {
    fn default() -> Self {
        FrameStructure {
            frame_duration: SimDuration::from_micros(2_500),
            info_slots: 4,
            subslots_per_slot: 3,
            request_slots: 5,
            pilot_slots: 8,
            rama_auction_slots: 5,
            drma_info_slots: 5,
            drma_minislots: 3,
            rmav_info_slots: 5,
            rmav_max_data_slots: 10,
        }
    }
}

impl FrameStructure {
    /// The frame clock corresponding to this structure.
    pub fn clock(&self) -> FrameClock {
        FrameClock::new(self.frame_duration)
    }

    /// The smallest fraction of an information slot the announcement schedule
    /// can allocate (a voice packet never costs less airtime than this).
    pub fn min_allocation(&self) -> f64 {
        1.0 / self.subslots_per_slot as f64
    }

    /// Validates internal consistency; called by [`SimConfig::validate`].
    pub fn validate(&self) {
        assert!(
            self.info_slots > 0,
            "at least one information slot is required"
        );
        assert!(
            self.subslots_per_slot > 0,
            "at least one sub-slot per slot is required"
        );
        assert!(
            self.request_slots > 0,
            "at least one request slot is required"
        );
        assert!(
            self.request_slots >= self.info_slots,
            "the paper requires N_r (request slots) >= N_i (information slots)"
        );
        assert!(
            self.rama_auction_slots > 0,
            "RAMA needs at least one auction slot"
        );
        assert!(
            self.drma_info_slots > 0 && self.drma_minislots > 0,
            "DRMA slot counts must be positive"
        );
        assert!(
            self.rmav_info_slots > 0 && self.rmav_max_data_slots > 0,
            "RMAV slot counts must be positive"
        );
        assert!(
            !self.frame_duration.is_zero(),
            "frame duration must be non-zero"
        );
    }
}

/// Tunable parameters of the CHARISMA priority metric (paper eq. (2)).
///
/// The implemented metric is
///
/// ```text
/// voice:  φ = α_v · f(CSI) + u · β_v ^ d  + V
/// data:   φ = α_d · f(CSI) + u · (1 − β_d ^ w) + γ_d
/// ```
///
/// where `f(CSI)` is the normalised throughput the adaptive PHY offers at the
/// estimated CSI (0–5), `d` is the number of frames until the packet's
/// deadline, `w` is the number of frames the request has been waiting, and
/// `u` is the urgency weight.  With the default values a voice request always
/// outranks any data request (the offset `V` exceeds the largest achievable
/// data priority), urgency dominates as a deadline approaches, and CSI breaks
/// ties among requests of similar urgency — the behaviour described in
/// Section 4.3 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CharismaParams {
    /// Weight of the CSI (throughput) term for voice requests (`α_v`).
    pub alpha_voice: f64,
    /// Weight of the CSI (throughput) term for data requests (`α_d`).
    pub alpha_data: f64,
    /// Forgetting factor of the voice deadline term (`β_v`, in (0,1)).
    pub beta_voice: f64,
    /// Forgetting factor of the data waiting term (`β_d`, in (0,1)).
    pub beta_data: f64,
    /// Constant offset added to data priorities (`γ_d`).
    pub gamma_data: f64,
    /// Priority offset of voice over data (`V`).
    pub voice_offset: f64,
    /// Weight of the urgency / waiting term (`u`).
    pub urgency_weight: f64,
    /// When false the CSI term is replaced by a constant: the protocol
    /// degenerates to earliest-deadline-first scheduling.  Used by the
    /// Section 5.3.1 ablation experiment.
    pub csi_aware: bool,
    /// Maximum number of data packets granted to a single data request in one
    /// frame (keeps one large file from starving other terminals).
    pub max_data_packets_per_grant: u32,
}

impl Default for CharismaParams {
    fn default() -> Self {
        CharismaParams {
            alpha_voice: 1.0,
            alpha_data: 1.0,
            beta_voice: 0.7,
            beta_data: 0.85,
            gamma_data: 0.0,
            voice_offset: 20.0,
            urgency_weight: 5.0,
            csi_aware: true,
            max_data_packets_per_grant: 10,
        }
    }
}

impl CharismaParams {
    /// Validates parameter ranges.
    pub fn validate(&self) {
        assert!(
            (0.0..1.0).contains(&self.beta_voice),
            "beta_voice must be in (0,1)"
        );
        assert!(
            (0.0..1.0).contains(&self.beta_data),
            "beta_data must be in (0,1)"
        );
        assert!(
            self.voice_offset >= 0.0,
            "voice offset must be non-negative"
        );
        assert!(
            self.max_data_packets_per_grant > 0,
            "data grant cap must be positive"
        );
    }
}

/// A mid-run step in the offered voice load (a scenario shape the paper never
/// evaluates; used by the campaign registry's `load_ramp` scenario).
///
/// Voice terminals with index `>= initial_voice` stay dormant — their traffic
/// sources advance (keeping RNG streams aligned with an always-active
/// population) but generate nothing — until `activation_frame`, at which
/// point they join the cell.  Data terminals are unaffected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoadRamp {
    /// Number of voice terminals active from frame 0.
    pub initial_voice: u32,
    /// Frame index at which the remaining voice terminals activate.
    pub activation_frame: u64,
}

/// Geometry of the multi-cell base-station layout.
///
/// The layout fixes the cell centers on the system plane; terminals roam the
/// layout's bounding box under the random-waypoint model and are served by
/// (and handed off between) the nearest base stations.  `cell_radius_m` is
/// the hex circumradius: adjacent centers sit `√3 · radius` apart, so the
/// Voronoi boundary between neighbours lies at `√3/2 · radius ≈ 0.87 ·
/// radius` from each.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Layout {
    /// Hexagonal packing: a center cell surrounded by rings of six (the
    /// classic 7-cell cluster at `cells = 7`).
    Hex {
        /// Cell circumradius in metres.
        cell_radius_m: f64,
    },
    /// A corridor of cells along a line (highway scenarios).
    Line {
        /// Cell circumradius in metres.
        cell_radius_m: f64,
    },
}

impl Layout {
    /// The default layout: hexagonal packing with 400 m cells.
    pub fn default_hex() -> Self {
        Layout::Hex {
            cell_radius_m: 400.0,
        }
    }

    /// The cell circumradius in metres.
    pub fn cell_radius_m(&self) -> f64 {
        match *self {
            Layout::Hex { cell_radius_m } | Layout::Line { cell_radius_m } => cell_radius_m,
        }
    }

    /// Validates the layout.
    pub fn validate(&self) {
        let r = self.cell_radius_m();
        assert!(
            r.is_finite() && r > 0.0,
            "cell radius must be positive and finite, got {r}"
        );
    }
}

impl Default for Layout {
    fn default() -> Self {
        Self::default_hex()
    }
}

/// What a cell does with a handoff attempt it has no room for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HandoffAdmission {
    /// Refuse the handoff: the terminal's buffered voice packets are dropped
    /// (the interrupted call of classical telephony) and it stays served —
    /// badly — by its old, now-distant cell until a retry.
    DropOnFull,
    /// Park the terminal in the target cell's admission queue; it keeps
    /// being served by the old cell, without packet loss, until the target
    /// frees capacity.
    Queue,
}

/// Handoff behaviour of the multi-cell system layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HandoffConfig {
    /// Admission policy when the target cell is at capacity.
    pub admission: HandoffAdmission,
    /// Maximum number of terminals a cell may serve (0: unlimited).  Must be
    /// at least the initial per-cell population when set.
    pub cell_capacity: u32,
    /// Frames a terminal waits after a refused (drop-on-full) handoff before
    /// attempting again.
    pub retry_frames: u64,
    /// A handoff is only attempted once the nearest base station is closer
    /// than the serving one by this margin (metres) — the standard hysteresis
    /// that prevents ping-ponging on the Voronoi boundary.
    pub hysteresis_m: f64,
}

impl Default for HandoffConfig {
    fn default() -> Self {
        HandoffConfig {
            admission: HandoffAdmission::Queue,
            cell_capacity: 0,
            retry_frames: 40, // 100 ms at the 2.5 ms frame
            hysteresis_m: 25.0,
        }
    }
}

impl HandoffConfig {
    /// Validates the parameters (`per_cell` is the initial per-cell terminal
    /// population, which a finite capacity must accommodate).
    pub fn validate(&self, per_cell: u32) {
        assert!(
            self.retry_frames > 0,
            "handoff retry_frames must be positive"
        );
        assert!(
            self.hysteresis_m.is_finite() && self.hysteresis_m >= 0.0,
            "handoff hysteresis must be finite and non-negative, got {}",
            self.hysteresis_m
        );
        if self.cell_capacity != 0 {
            assert!(
                self.cell_capacity >= per_cell,
                "cell_capacity ({}) is below the initial per-cell population ({per_cell})",
                self.cell_capacity
            );
        }
    }
}

/// The multi-cell system configuration.  `None` in [`SimConfig::system`]
/// selects the paper's implicit single cell (no geometry, flat mean SNR) —
/// the historical code path, bit-for-bit.
///
/// With a system configured, `num_voice`/`num_data` are the **initial
/// per-cell** populations: the run starts with `cells · (num_voice +
/// num_data)` terminals scattered uniformly over their starting cells, and
/// terminals migrate between cells as they roam.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of cells (≥ 1; `cells = 1` exercises the system machinery on a
    /// single base station, and with a flat path-loss profile reproduces the
    /// implicit-cell metrics exactly).
    pub cells: u32,
    /// Base-station layout geometry.
    pub layout: Layout,
    /// Handoff admission behaviour.
    pub handoff: HandoffConfig,
    /// Distance-based path loss feeding each terminal's mean SNR.
    pub path_loss: PathLossConfig,
    /// Intra-point worker threads for the sharded frame loop.  Purely an
    /// execution hint: `0` or `1` selects the single-threaded round-robin
    /// path, and any value produces **byte-identical** reports (the
    /// determinism suite pins this), so it never changes what a run means —
    /// only how fast a city-scale layout steps its cells.
    pub threads: u32,
}

impl SystemConfig {
    /// A system of `cells` cells with default layout, handoff and path loss.
    pub fn new(cells: u32) -> Self {
        SystemConfig {
            cells,
            layout: Layout::default(),
            handoff: HandoffConfig::default(),
            path_loss: PathLossConfig::default(),
            threads: 0,
        }
    }

    /// Validates the system configuration (`per_cell` is the initial
    /// per-cell terminal population).
    pub fn validate(&self, per_cell: u32) {
        assert!(self.cells >= 1, "a system needs at least one cell");
        self.layout.validate();
        self.handoff.validate(per_cell);
        self.path_loss.validate();
    }
}

/// Request-contention parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContentionConfig {
    /// Permission probability for voice requests (`p_v`).
    pub pv: f64,
    /// Permission probability for data requests (`p_d`).
    pub pd: f64,
}

impl Default for ContentionConfig {
    fn default() -> Self {
        ContentionConfig { pv: 0.15, pd: 0.05 }
    }
}

/// The complete configuration of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of voice terminals (`N_v`).
    pub num_voice: u32,
    /// Number of data terminals (`N_d`).
    pub num_data: u32,
    /// Frame structure.
    pub frame: FrameStructure,
    /// Voice source model.
    pub voice_source: VoiceSourceConfig,
    /// Data source model.
    pub data_source: DataSourceConfig,
    /// Contention permission probabilities.
    pub contention: ContentionConfig,
    /// Radio channel model (mean SNR, shadowing).
    pub channel: ChannelConfig,
    /// How terminal channels are advanced along the frame grid.  Lazy (the
    /// default) coalesces idle frames into one fading step and caches the
    /// per-frame SNR; eager reproduces the pre-optimisation per-frame
    /// stepping and exists for benchmarking and statistical regression tests.
    pub channel_mode: ChannelMode,
    /// Terminal speed population.
    pub speed: SpeedProfile,
    /// Adaptive (ABICM) PHY parameters — used by CHARISMA and D-TDMA/VR.
    pub adaptive_phy: AdaptivePhyConfig,
    /// Fixed-rate PHY parameters — used by the other baselines.
    pub fixed_phy: FixedPhyConfig,
    /// CSI estimator parameters.
    pub csi: CsiEstimatorConfig,
    /// CHARISMA priority-metric parameters.
    pub charisma: CharismaParams,
    /// Whether the base station keeps a request queue (Section 4.5).
    pub request_queue: bool,
    /// Maximum number of requests the base-station queue may hold.
    pub request_queue_capacity: usize,
    /// Frames simulated before measurement starts (warm-up).
    pub warmup_frames: u64,
    /// Frames measured after warm-up.
    pub measured_frames: u64,
    /// Optional mid-run voice load step (None: all terminals active from
    /// frame 0, the paper's setting).
    pub ramp: Option<LoadRamp>,
    /// Optional multi-cell system layer (None: the paper's implicit single
    /// cell, the historical code path).  See [`SystemConfig`].
    pub system: Option<SystemConfig>,
    /// Master random seed.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::default_paper()
    }
}

impl SimConfig {
    /// The reproduction's defaults corresponding to the paper's Table 1.
    pub fn default_paper() -> Self {
        SimConfig {
            num_voice: 40,
            num_data: 0,
            frame: FrameStructure::default(),
            voice_source: VoiceSourceConfig::default(),
            data_source: DataSourceConfig::default(),
            contention: ContentionConfig::default(),
            channel: ChannelConfig::default(),
            channel_mode: ChannelMode::default(),
            speed: SpeedProfile::paper_default(),
            adaptive_phy: AdaptivePhyConfig::default(),
            fixed_phy: FixedPhyConfig::default(),
            csi: CsiEstimatorConfig::default(),
            charisma: CharismaParams::default(),
            request_queue: false,
            request_queue_capacity: 256,
            warmup_frames: 4_000,    // 10 s warm-up
            measured_frames: 40_000, // 100 s measured
            ramp: None,
            system: None,
            seed: 0x5EED_CAFE,
        }
    }

    /// The frame clock for this configuration.
    pub fn clock(&self) -> FrameClock {
        self.frame.clock()
    }

    /// Total number of frames simulated (warm-up + measured).
    pub fn total_frames(&self) -> u64 {
        self.warmup_frames + self.measured_frames
    }

    /// The master seed of replication `rep` of this configuration.
    ///
    /// Replication 0 is the configured seed itself, so a single-replication
    /// run reproduces the historical (pre-replication-engine) sample path
    /// bit for bit.  Higher replications derive an independent seed stream
    /// by mixing the point seed with the replication index through
    /// SplitMix64 — a pure function of `(seed, rep)`, so the stream is
    /// byte-identical no matter which sweep worker executes the point or in
    /// what order the replications of different points interleave.
    pub fn replication_seed(&self, rep: u32) -> u64 {
        if rep == 0 {
            self.seed
        } else {
            let mut sm =
                SplitMix64::new(self.seed ^ (rep as u64).wrapping_mul(0xA076_1D64_78BD_642F));
            // Two rounds, mirroring `RngStreams::derive_seed`: adjacent
            // replication indices must map to uncorrelated master seeds.
            let first = sm.next_u64();
            let mut sm2 = SplitMix64::new(first ^ (rep as u64).rotate_left(23));
            sm2.next_u64()
        }
    }

    /// Validates the configuration, panicking with a descriptive message on
    /// the first inconsistency.  Called by the scenario builder before a run.
    pub fn validate(&self) {
        self.frame.validate();
        self.charisma.validate();
        assert!(
            (0.0..=1.0).contains(&self.contention.pv),
            "pv must be a probability"
        );
        assert!(
            (0.0..=1.0).contains(&self.contention.pd),
            "pd must be a probability"
        );
        assert!(self.measured_frames > 0, "measured_frames must be positive");
        assert!(
            self.request_queue_capacity > 0,
            "request queue capacity must be positive"
        );
        assert!(
            self.num_voice as u64 + self.num_data as u64 > 0,
            "a scenario needs at least one terminal"
        );
        if let Some(ramp) = &self.ramp {
            assert!(
                ramp.initial_voice <= self.num_voice,
                "ramp initial_voice ({}) must not exceed num_voice ({})",
                ramp.initial_voice,
                self.num_voice
            );
            assert!(
                ramp.activation_frame <= self.total_frames(),
                "ramp activation_frame ({}) is beyond the run ({} frames)",
                ramp.activation_frame,
                self.total_frames()
            );
        }
        if let Some(system) = &self.system {
            system.validate(self.num_voice + self.num_data);
        }
        // The voice packet period must be a whole number of frames, otherwise
        // the isochronous schedule cannot be honoured.
        let _ = self.clock().frames_per(self.voice_source.packet_period);
    }

    /// A down-scaled configuration for fast unit/integration tests: fewer
    /// frames and a fixed 50 km/h speed so tests stay deterministic and quick
    /// while exercising exactly the same code paths.
    pub fn quick_test() -> Self {
        SimConfig {
            num_voice: 20,
            num_data: 2,
            warmup_frames: 400,
            measured_frames: 4_000,
            speed: SpeedProfile::Fixed(50.0),
            ..Self::default_paper()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the exact `replication_seed` outputs over a (seed, rep) grid.
    ///
    /// Durable-campaign resume splices checkpointed results in place of
    /// re-simulation, which is only sound while `replication_seed` stays a
    /// pure, *stable* function of `(seed, rep)` — any refactor of the seed
    /// derivation silently invalidates every existing checkpoint and
    /// baseline.  These constants were computed from the shipped SplitMix64
    /// derivation; if this test fails, the derivation changed and the
    /// checkpoint schema version must change with it.
    #[test]
    fn replication_seed_golden_values() {
        const GOLDEN: &[(u64, u32, u64)] = &[
            (0x0, 0, 0x0000_0000_0000_0000),
            (0x0, 1, 0x97a3_ebac_6c7a_79d4),
            (0x0, 2, 0x4c64_490e_f994_db6b),
            (0x0, 3, 0xb2df_bac6_f7ec_85bf),
            (0x0, 7, 0xae9a_09ff_e446_d8c0),
            (0x0, 15, 0x7c2d_a0b6_6b3c_7062),
            (0x1, 0, 0x0000_0000_0000_0001),
            (0x1, 1, 0xa291_6a30_ad47_96ac),
            (0x1, 2, 0xf60b_398c_f2e3_d85a),
            (0x1, 3, 0xdb78_b976_2e4a_d398),
            (0x1, 7, 0xcb17_1a9b_1c17_64ae),
            (0x1, 15, 0x6a6f_2faa_3e89_03dd),
            (0x2a, 0, 0x0000_0000_0000_002a),
            (0x2a, 1, 0x0352_0118_b48f_7e59),
            (0x2a, 2, 0x61f2_3a12_8318_51aa),
            (0x2a, 3, 0x887e_7892_2fac_fdc0),
            (0x2a, 7, 0x86e6_4038_e573_a04b),
            (0x2a, 15, 0xec15_c1fd_3518_6a2a),
            (0x5eed_0000_0000_0001, 0, 0x5eed_0000_0000_0001),
            (0x5eed_0000_0000_0001, 1, 0xf231_c709_8125_7398),
            (0x5eed_0000_0000_0001, 2, 0x60a4_ec64_fd70_45c4),
            (0x5eed_0000_0000_0001, 3, 0xd95d_ee4b_6b2a_b525),
            (0x5eed_0000_0000_0001, 7, 0x7252_a7b0_0f64_c1d2),
            (0x5eed_0000_0000_0001, 15, 0xd5f8_7f4d_c560_bcfe),
            (0xdead_beef_5eed_cafe, 0, 0xdead_beef_5eed_cafe),
            (0xdead_beef_5eed_cafe, 1, 0x0437_23eb_822d_a09a),
            (0xdead_beef_5eed_cafe, 2, 0x5ccc_1b96_16d1_ff3b),
            (0xdead_beef_5eed_cafe, 3, 0x48dc_61cf_8c9a_5e29),
            (0xdead_beef_5eed_cafe, 7, 0xe024_d44b_0025_6a2c),
            (0xdead_beef_5eed_cafe, 15, 0xcf56_1239_0352_8e76),
            (0xffff_ffff_ffff_ffff, 0, 0xffff_ffff_ffff_ffff),
            (0xffff_ffff_ffff_ffff, 1, 0x9feb_604d_4696_82fc),
            (0xffff_ffff_ffff_ffff, 2, 0xf4db_db78_df2e_08d2),
            (0xffff_ffff_ffff_ffff, 3, 0x7a3c_dfda_e5fa_6a8c),
            (0xffff_ffff_ffff_ffff, 7, 0x290d_c065_72a3_bd44),
            (0xffff_ffff_ffff_ffff, 15, 0xf2ef_8dcf_407f_7082),
        ];
        for &(seed, rep, expected) in GOLDEN {
            let mut cfg = SimConfig::default_paper();
            cfg.seed = seed;
            assert_eq!(
                cfg.replication_seed(rep),
                expected,
                "replication_seed({seed:#x}, {rep}) drifted from its pinned value"
            );
        }
    }

    #[test]
    fn paper_default_is_internally_consistent() {
        let cfg = SimConfig::default_paper();
        cfg.validate();
        assert_eq!(cfg.clock().frames_per(cfg.voice_source.packet_period), 8);
        assert_eq!(cfg.total_frames(), 44_000);
    }

    #[test]
    fn request_subframe_is_larger_than_information_subframe() {
        let f = FrameStructure::default();
        assert!(
            f.request_slots >= f.info_slots,
            "paper: N_r slightly larger than N_i"
        );
    }

    #[test]
    fn fixed_phy_capacity_supports_about_sixty_voice_users() {
        // Sanity-check the calibration: N_i slots per frame, 8 frames per
        // voice packet period and a 0.426 activity factor must put the fixed
        // PHY's hard capacity in the 50–70 voice-user range (paper: ≈ 60 for
        // D-TDMA/FR).
        let cfg = SimConfig::default_paper();
        let cap = cfg.frame.info_slots as f64 * 8.0 / cfg.voice_source.activity_factor();
        assert!((55.0..=80.0).contains(&cap), "calibrated FR capacity {cap}");
    }

    #[test]
    #[should_panic(expected = "N_r")]
    fn validation_rejects_small_request_subframe() {
        let mut cfg = SimConfig::default_paper();
        cfg.frame.request_slots = 1;
        cfg.frame.info_slots = 3;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "at least one terminal")]
    fn validation_rejects_empty_population() {
        let mut cfg = SimConfig::default_paper();
        cfg.num_voice = 0;
        cfg.num_data = 0;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "beta_voice")]
    fn validation_rejects_bad_forgetting_factor() {
        let mut cfg = SimConfig::default_paper();
        cfg.charisma.beta_voice = 1.5;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "initial_voice")]
    fn validation_rejects_ramp_larger_than_population() {
        let mut cfg = SimConfig::default_paper();
        cfg.ramp = Some(LoadRamp {
            initial_voice: cfg.num_voice + 1,
            activation_frame: 100,
        });
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "activation_frame")]
    fn validation_rejects_ramp_beyond_the_run() {
        let mut cfg = SimConfig::default_paper();
        cfg.ramp = Some(LoadRamp {
            initial_voice: 10,
            activation_frame: cfg.total_frames() + 1,
        });
        cfg.validate();
    }

    #[test]
    fn replication_zero_is_the_point_seed_itself() {
        let cfg = SimConfig::default_paper();
        assert_eq!(cfg.replication_seed(0), cfg.seed);
    }

    #[test]
    fn replication_seeds_are_deterministic_and_distinct() {
        let cfg = SimConfig::default_paper();
        let seeds: Vec<u64> = (0..32).map(|r| cfg.replication_seed(r)).collect();
        // Deterministic.
        assert_eq!(
            seeds,
            (0..32).map(|r| cfg.replication_seed(r)).collect::<Vec<_>>()
        );
        // Pairwise distinct.
        for (i, a) in seeds.iter().enumerate() {
            assert!(
                !seeds[..i].contains(a),
                "replications {i} collides with an earlier seed"
            );
        }
        // A different point seed yields a different replication stream.
        let mut other = cfg.clone();
        other.seed ^= 1;
        assert_ne!(other.replication_seed(1), cfg.replication_seed(1));
    }

    #[test]
    fn system_config_validates_and_rejects_bad_shapes() {
        let mut cfg = SimConfig::default_paper();
        cfg.system = Some(SystemConfig::new(7));
        cfg.validate();
        assert_eq!(cfg.system.unwrap().layout.cell_radius_m(), 400.0);
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_cell_system_is_rejected() {
        let mut cfg = SimConfig::default_paper();
        cfg.system = Some(SystemConfig::new(0));
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "cell radius")]
    fn degenerate_layout_is_rejected() {
        let mut cfg = SimConfig::default_paper();
        let mut system = SystemConfig::new(3);
        system.layout = Layout::Line { cell_radius_m: 0.0 };
        cfg.system = Some(system);
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "cell_capacity")]
    fn capacity_below_initial_population_is_rejected() {
        let mut cfg = SimConfig::default_paper(); // 40 voice terminals
        let mut system = SystemConfig::new(3);
        system.handoff.cell_capacity = 10;
        cfg.system = Some(system);
        cfg.validate();
    }

    #[test]
    fn quick_test_config_is_valid_and_small() {
        let cfg = SimConfig::quick_test();
        cfg.validate();
        assert!(cfg.total_frames() < 10_000);
    }

    #[test]
    fn config_is_cloneable_and_comparable() {
        let cfg = SimConfig::default_paper();
        let clone = cfg.clone();
        assert_eq!(cfg, clone);
        let mut other = clone;
        other.num_voice += 1;
        assert_ne!(cfg, other);
    }
}
