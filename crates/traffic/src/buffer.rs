//! Per-terminal transmit buffers.
//!
//! * [`VoiceBuffer`] keeps the (small number of) speech packets awaiting
//!   transmission together with their absolute deadlines, and drops packets
//!   whose deadline passes before they are sent — the "packet dropping"
//!   component of the paper's voice loss metric.
//! * [`DataBuffer`] is a FIFO of file-data packets that remembers each
//!   packet's arrival time so the average data delay (time from arrival to
//!   the start of its successful transmission) can be measured exactly.

use charisma_des::SimTime;
use std::collections::VecDeque;

/// A speech packet awaiting transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VoicePacket {
    /// Time the packet was generated.
    pub generated_at: SimTime,
    /// Absolute deadline; the packet is dropped if still queued at this time.
    pub deadline: SimTime,
}

/// Deadline-aware buffer for voice packets.
///
/// The earliest queued deadline is cached inline so the per-frame sweeps
/// (deadline expiry, reservation-renewal scans) answer from the buffer
/// struct itself without touching the queue's heap allocation.
#[derive(Debug, Clone, Default)]
pub struct VoiceBuffer {
    queue: VecDeque<VoicePacket>,
    /// Invariant: `min(queue.deadline)`, `None` when empty.
    earliest: Option<SimTime>,
}

impl VoiceBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        VoiceBuffer {
            queue: VecDeque::new(),
            earliest: None,
        }
    }

    /// Number of packets waiting.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    fn recompute_earliest(&mut self) {
        self.earliest = self.queue.iter().map(|p| p.deadline).min();
    }

    /// Enqueues a freshly generated packet.
    pub fn push(&mut self, packet: VoicePacket) {
        debug_assert!(packet.deadline >= packet.generated_at);
        self.earliest = Some(match self.earliest {
            Some(d) => d.min(packet.deadline),
            None => packet.deadline,
        });
        self.queue.push_back(packet);
    }

    /// Drops every queued packet whose deadline is at or before `now` and
    /// returns how many were dropped.
    pub fn drop_expired(&mut self, now: SimTime) -> usize {
        match self.earliest {
            // Fast path: nothing can be expired, no queue traversal.
            Some(d) if d <= now => {}
            _ => return 0,
        }
        let before = self.queue.len();
        self.queue.retain(|p| p.deadline > now);
        self.recompute_earliest();
        before - self.queue.len()
    }

    /// The earliest deadline among queued packets, if any.
    pub fn earliest_deadline(&self) -> Option<SimTime> {
        self.earliest
    }

    /// Removes and returns the head-of-line packet (oldest first).
    pub fn pop(&mut self) -> Option<VoicePacket> {
        let popped = self.queue.pop_front();
        if let Some(p) = popped {
            if Some(p.deadline) == self.earliest {
                self.recompute_earliest();
            }
        }
        popped
    }

    /// Peeks at the head-of-line packet.
    pub fn peek(&self) -> Option<&VoicePacket> {
        self.queue.front()
    }

    /// Discards every queued packet, keeping the allocation (used for
    /// terminals that are dormant until a load-ramp activation frame).
    pub fn clear(&mut self) {
        self.queue.clear();
        self.earliest = None;
    }
}

/// A contiguous run of data packets that arrived together (one burst or a
/// fragment of one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DataRun {
    arrived_at: SimTime,
    count: u32,
}

/// Packets removed from a [`DataBuffer`] for transmission, grouped by arrival
/// time so per-packet delays can be accumulated without storing each packet
/// individually.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServedRun {
    /// When these packets arrived at the terminal.
    pub arrived_at: SimTime,
    /// How many packets of that arrival are being served now.
    pub count: u32,
}

/// FIFO buffer for file-data packets.
#[derive(Debug, Clone, Default)]
pub struct DataBuffer {
    runs: VecDeque<DataRun>,
    len: u64,
}

impl DataBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        DataBuffer {
            runs: VecDeque::new(),
            len: 0,
        }
    }

    /// Number of packets waiting.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Discards every queued packet, keeping the allocation (used for
    /// terminals that are dormant until a load-ramp activation frame).
    pub fn clear(&mut self) {
        self.runs.clear();
        self.len = 0;
    }

    /// Enqueues `count` packets that all arrived at `arrived_at`.
    pub fn push_burst(&mut self, arrived_at: SimTime, count: u32) {
        if count == 0 {
            return;
        }
        if let Some(last) = self.runs.back_mut() {
            if last.arrived_at == arrived_at {
                last.count += count;
                self.len += count as u64;
                return;
            }
        }
        self.runs.push_back(DataRun { arrived_at, count });
        self.len += count as u64;
    }

    /// Removes up to `max_packets` packets in FIFO order and returns them
    /// grouped by arrival time.
    pub fn pop(&mut self, max_packets: u32) -> Vec<ServedRun> {
        let mut served = Vec::new();
        self.pop_into(max_packets, &mut served);
        served
    }

    /// Allocation-free variant of [`Self::pop`]: clears `served` and fills it
    /// with the removed runs, reusing its capacity.  This is what the
    /// per-frame transmission engine calls with a scratch buffer so the hot
    /// loop never allocates.
    pub fn pop_into(&mut self, max_packets: u32, served: &mut Vec<ServedRun>) {
        served.clear();
        let mut remaining = max_packets;
        while remaining > 0 {
            let Some(front) = self.runs.front_mut() else {
                break;
            };
            let take = front.count.min(remaining);
            served.push(ServedRun {
                arrived_at: front.arrived_at,
                count: take,
            });
            front.count -= take;
            remaining -= take;
            self.len -= take as u64;
            if front.count == 0 {
                self.runs.pop_front();
            }
        }
    }

    /// Re-inserts `count` packets at the *front* of the queue with the given
    /// arrival time.  Used for retransmissions: a packet corrupted by the
    /// channel keeps its original arrival time (so its eventual delay
    /// includes the retransmission) and its FIFO position.
    pub fn push_front(&mut self, arrived_at: SimTime, count: u32) {
        if count == 0 {
            return;
        }
        if let Some(front) = self.runs.front_mut() {
            if front.arrived_at == arrived_at {
                front.count += count;
                self.len += count as u64;
                return;
            }
        }
        self.runs.push_front(DataRun { arrived_at, count });
        self.len += count as u64;
    }

    /// Arrival time of the head-of-line packet, if any.
    pub fn head_arrival(&self) -> Option<SimTime> {
        self.runs.front().map(|r| r.arrived_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charisma_des::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn voice_buffer_drops_only_expired_packets() {
        let mut b = VoiceBuffer::new();
        b.push(VoicePacket {
            generated_at: t(0),
            deadline: t(20_000),
        });
        b.push(VoicePacket {
            generated_at: t(20_000),
            deadline: t(40_000),
        });
        assert_eq!(b.len(), 2);

        assert_eq!(b.drop_expired(t(10_000)), 0);
        assert_eq!(b.drop_expired(t(20_000)), 1); // deadline at `now` counts as expired
        assert_eq!(b.len(), 1);
        assert_eq!(b.earliest_deadline(), Some(t(40_000)));
    }

    #[test]
    fn voice_buffer_is_fifo() {
        let mut b = VoiceBuffer::new();
        b.push(VoicePacket {
            generated_at: t(0),
            deadline: t(20_000),
        });
        b.push(VoicePacket {
            generated_at: t(20_000),
            deadline: t(40_000),
        });
        assert_eq!(b.pop().unwrap().generated_at, t(0));
        assert_eq!(b.peek().unwrap().generated_at, t(20_000));
        assert_eq!(b.pop().unwrap().generated_at, t(20_000));
        assert!(b.pop().is_none());
    }

    #[test]
    fn data_buffer_len_tracks_pushes_and_pops() {
        let mut b = DataBuffer::new();
        assert!(b.is_empty());
        b.push_burst(t(0), 100);
        b.push_burst(t(2_500), 50);
        assert_eq!(b.len(), 150);

        let served = b.pop(30);
        assert_eq!(
            served,
            vec![ServedRun {
                arrived_at: t(0),
                count: 30
            }]
        );
        assert_eq!(b.len(), 120);

        let served = b.pop(100);
        assert_eq!(
            served,
            vec![
                ServedRun {
                    arrived_at: t(0),
                    count: 70
                },
                ServedRun {
                    arrived_at: t(2_500),
                    count: 30
                },
            ]
        );
        assert_eq!(b.len(), 20);
        assert_eq!(b.head_arrival(), Some(t(2_500)));
    }

    #[test]
    fn data_buffer_pop_more_than_available_drains_it() {
        let mut b = DataBuffer::new();
        b.push_burst(t(0), 5);
        let served = b.pop(100);
        assert_eq!(served.iter().map(|r| r.count).sum::<u32>(), 5);
        assert!(b.is_empty());
        assert!(b.pop(10).is_empty());
    }

    #[test]
    fn data_buffer_merges_same_instant_bursts() {
        let mut b = DataBuffer::new();
        b.push_burst(t(0), 10);
        b.push_burst(t(0), 15);
        assert_eq!(b.len(), 25);
        let served = b.pop(25);
        assert_eq!(served.len(), 1);
        assert_eq!(served[0].count, 25);
    }

    #[test]
    fn zero_count_burst_is_a_noop() {
        let mut b = DataBuffer::new();
        b.push_burst(t(0), 0);
        assert!(b.is_empty());
        assert_eq!(b.head_arrival(), None);
    }

    #[test]
    fn push_front_preserves_fifo_order_for_retransmissions() {
        let mut b = DataBuffer::new();
        b.push_burst(t(1_000), 10);
        let served = b.pop(3);
        assert_eq!(served[0].count, 3);
        // Two of the three failed: put them back at the front.
        b.push_front(t(1_000), 2);
        assert_eq!(b.len(), 9);
        assert_eq!(b.head_arrival(), Some(t(1_000)));
        let next = b.pop(9);
        assert_eq!(next.iter().map(|r| r.count).sum::<u32>(), 9);
    }

    #[test]
    fn push_front_with_distinct_arrival_creates_new_run() {
        let mut b = DataBuffer::new();
        b.push_burst(t(5_000), 4);
        b.push_front(t(1_000), 2);
        assert_eq!(b.head_arrival(), Some(t(1_000)));
        let served = b.pop(6);
        assert_eq!(
            served[0],
            ServedRun {
                arrived_at: t(1_000),
                count: 2
            }
        );
        assert_eq!(
            served[1],
            ServedRun {
                arrived_at: t(5_000),
                count: 4
            }
        );
        assert_eq!(b.len(), 0);
        b.push_front(t(2_000), 0);
        assert!(b.is_empty());
    }

    #[test]
    fn voice_deadline_arithmetic_with_durations() {
        let gen = t(50_000);
        let p = VoicePacket {
            generated_at: gen,
            deadline: gen + SimDuration::from_millis(20),
        };
        assert_eq!(p.deadline, t(70_000));
    }
}
