//! The file-data source model.
//!
//! A data terminal generates *bursts* (files) whose inter-arrival times are
//! exponentially distributed with mean 1 s, and whose size in packets is
//! exponentially distributed with mean 100 packets (rounded up to at least
//! one whole packet).  All packets of a burst arrive together at a frame
//! boundary, as the paper assumes.

use charisma_des::{FrameClock, Sampler, SimDuration, Xoshiro256StarStar};
use serde::{Deserialize, Serialize};

/// Configuration of the data source (paper Table 1 values by default).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataSourceConfig {
    /// Mean burst inter-arrival time.
    pub mean_interarrival: SimDuration,
    /// Mean burst size in packets.
    pub mean_burst_packets: f64,
}

impl Default for DataSourceConfig {
    fn default() -> Self {
        DataSourceConfig {
            mean_interarrival: SimDuration::from_secs(1),
            mean_burst_packets: 100.0,
        }
    }
}

impl DataSourceConfig {
    /// Long-run offered load in packets per frame for the given frame clock:
    /// `mean_burst / mean_interarrival × frame_duration`.
    pub fn offered_packets_per_frame(&self, clock: &FrameClock) -> f64 {
        self.mean_burst_packets * clock.frame_duration().as_secs_f64()
            / self.mean_interarrival.as_secs_f64()
    }
}

/// A single terminal's data source.
///
/// Driven frame-synchronously like the voice source: [`DataSource::on_frame_start`]
/// returns the number of packets that arrive at that frame boundary.
#[derive(Debug, Clone)]
pub struct DataSource {
    config: DataSourceConfig,
    clock: FrameClock,
    rng: Xoshiro256StarStar,
    /// Frame index at which the next burst arrives.
    next_burst_frame: u64,
    next_frame: u64,
}

impl DataSource {
    /// Creates a data source; the first burst is scheduled one full
    /// inter-arrival time into the run.
    pub fn new(config: DataSourceConfig, clock: FrameClock, mut rng: Xoshiro256StarStar) -> Self {
        assert!(
            config.mean_burst_packets >= 1.0,
            "mean burst size must be at least one packet"
        );
        let first = Self::draw_gap_frames(&config, &clock, &mut rng);
        DataSource {
            config,
            clock,
            rng,
            next_burst_frame: first,
            next_frame: 0,
        }
    }

    /// The source configuration.
    pub fn config(&self) -> &DataSourceConfig {
        &self.config
    }

    fn draw_gap_frames(
        config: &DataSourceConfig,
        clock: &FrameClock,
        rng: &mut Xoshiro256StarStar,
    ) -> u64 {
        let secs = Sampler::exponential(rng, config.mean_interarrival.as_secs_f64());
        ((secs / clock.frame_duration().as_secs_f64()).ceil() as u64).max(1)
    }

    fn draw_burst_size(&mut self) -> u32 {
        let size = Sampler::exponential(&mut self.rng, self.config.mean_burst_packets);
        (size.ceil() as u32).max(1)
    }

    /// Advances the source across the boundary that starts frame
    /// `frame_index`; returns the number of packets arriving there (possibly
    /// from more than one burst if inter-arrival gaps round to the same
    /// frame).  Frames must be visited in ascending order; frames strictly
    /// before [`Self::next_event_frame`] may be skipped — the call is a pure
    /// no-op there (no state change, no draw), so skipping changes nothing.
    pub fn on_frame_start(&mut self, frame_index: u64) -> u32 {
        assert!(
            frame_index >= self.next_frame,
            "data source must be driven forward in frame order"
        );
        self.next_frame = frame_index + 1;

        let mut arrived = 0u32;
        while frame_index >= self.next_burst_frame {
            arrived = arrived.saturating_add(self.draw_burst_size());
            let gap = Self::draw_gap_frames(&self.config, &self.clock, &mut self.rng);
            self.next_burst_frame += gap;
        }
        arrived
    }

    /// The next frame index at which [`Self::on_frame_start`] does anything
    /// (the next burst arrival).  Calls on earlier frames are no-ops and may
    /// be skipped.
    pub fn next_event_frame(&self) -> u64 {
        self.next_burst_frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charisma_des::{RngStreams, StreamId};

    fn src(seed: u64) -> DataSource {
        let streams = RngStreams::new(seed);
        DataSource::new(
            DataSourceConfig::default(),
            FrameClock::paper_default(),
            streams.stream(StreamId::new(StreamId::DOMAIN_DATA, 0)),
        )
    }

    #[test]
    fn offered_load_matches_closed_form() {
        let cfg = DataSourceConfig::default();
        let load = cfg.offered_packets_per_frame(&FrameClock::paper_default());
        assert!(
            (load - 0.25).abs() < 1e-12,
            "offered load {load} packets/frame"
        );
    }

    #[test]
    fn long_run_arrival_rate_matches_offered_load() {
        let mut s = src(1);
        let frames = 2_000_000u64; // 5000 s
        let mut total: u64 = 0;
        for k in 0..frames {
            total += s.on_frame_start(k) as u64;
        }
        let per_frame = total as f64 / frames as f64;
        assert!(
            (per_frame - 0.25).abs() < 0.02,
            "measured {per_frame} packets/frame"
        );
    }

    #[test]
    fn mean_burst_size_is_about_one_hundred() {
        let mut s = src(2);
        let mut bursts = vec![];
        for k in 0..2_000_000u64 {
            let n = s.on_frame_start(k);
            if n > 0 {
                bursts.push(n as f64);
            }
        }
        assert!(bursts.len() > 1_000);
        let mean = bursts.iter().sum::<f64>() / bursts.len() as f64;
        // Bursts landing on the same frame are merged, so the mean can drift a
        // little above 100.
        assert!((95.0..115.0).contains(&mean), "mean burst {mean}");
    }

    #[test]
    fn mean_interarrival_is_about_one_second() {
        let mut s = src(3);
        let mut arrivals = vec![];
        for k in 0..2_000_000u64 {
            if s.on_frame_start(k) > 0 {
                arrivals.push(k as f64 * 0.0025);
            }
        }
        let gaps: Vec<f64> = arrivals.windows(2).map(|w| w[1] - w[0]).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!((0.9..1.15).contains(&mean), "mean inter-arrival {mean} s");
    }

    #[test]
    fn burst_sizes_are_at_least_one() {
        let mut s = src(4);
        for k in 0..200_000u64 {
            let n = s.on_frame_start(k);
            assert!(n == 0 || n >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "forward in frame order")]
    fn frames_must_be_visited_in_order() {
        let mut s = src(5);
        s.on_frame_start(0);
        s.on_frame_start(0);
    }

    #[test]
    fn skipping_noop_frames_matches_visiting_every_frame() {
        // Jumping straight to `next_event_frame` must produce the same bursts
        // from the same draws as stepping every frame.
        let mut dense = src(16);
        let mut sparse = src(16);
        let mut k = 0u64;
        while k < 2_000_000 {
            let next = sparse.next_event_frame().max(k);
            let mut dense_burst = 0;
            for j in k..=next {
                let n = dense.on_frame_start(j);
                if j < next {
                    assert_eq!(n, 0, "frame {j} must be a no-op");
                } else {
                    dense_burst = n;
                }
            }
            let sparse_burst = sparse.on_frame_start(next);
            assert_eq!(sparse_burst, dense_burst, "burst at {next}");
            assert_eq!(sparse.next_event_frame(), dense.next_event_frame());
            k = next + 1;
        }
    }

    #[test]
    #[should_panic(expected = "at least one packet")]
    fn invalid_burst_mean_rejected() {
        let streams = RngStreams::new(6);
        let _ = DataSource::new(
            DataSourceConfig {
                mean_burst_packets: 0.2,
                ..Default::default()
            },
            FrameClock::paper_default(),
            streams.stream(StreamId::new(StreamId::DOMAIN_DATA, 0)),
        );
    }
}
