//! # charisma-traffic — integrated voice / data traffic sources
//!
//! Implements the source and buffering models of Section 2 of the paper:
//!
//! * [`voice`] — the two-state (talkspurt / silence) voice source with
//!   exponentially distributed state holding times (means 1.0 s and 1.35 s),
//!   8 kbps speech packetised every 20 ms, and a 20 ms delivery deadline per
//!   packet.  State changes and packet arrivals happen at frame boundaries,
//!   exactly as the paper assumes.
//! * [`data`] — the file-data source: bursts arrive with exponentially
//!   distributed inter-arrival times (mean 1 s) and carry an exponentially
//!   distributed number of packets (mean 100), all arriving at a frame
//!   boundary.
//! * [`buffer`] — the per-terminal transmit buffers: a deadline-aware voice
//!   buffer that drops packets whose deadline expires before transmission,
//!   and a FIFO data buffer that records arrival times so the data-delay
//!   metric can be computed per packet.
//! * [`packet`] — packet and terminal identifiers shared across the stack.
//!
//! Contention behaviour (permission probabilities, retries) is *not* part of
//! this crate: it belongs to the MAC protocols in the `charisma` crate, which
//! drive these sources frame by frame.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod buffer;
pub mod data;
pub mod packet;
pub mod voice;

pub use buffer::{DataBuffer, VoiceBuffer};
pub use data::{DataSource, DataSourceConfig};
pub use packet::{PacketKind, TerminalClass, TerminalId};
pub use voice::{VoiceActivity, VoiceSource, VoiceSourceConfig};
