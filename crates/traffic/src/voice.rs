//! The two-state voice source model.
//!
//! A voice terminal alternates between *talkspurt* and *silence* states whose
//! durations are exponentially distributed with means `t_t = 1.0 s` and
//! `t_s = 1.35 s` (the empirical values of Gruber & Strawczynski cited by the
//! paper).  State changes occur only at frame boundaries.  During a talkspurt
//! the 8 kbps speech codec emits one packet every 20 ms; each packet must be
//! delivered within 20 ms of its generation or it is dropped by the terminal.

use charisma_des::{FrameClock, Sampler, SimDuration, SimTime, Xoshiro256StarStar};
use serde::{Deserialize, Serialize};

/// Configuration of the voice source (paper Table 1 values by default).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VoiceSourceConfig {
    /// Mean talkspurt duration (`t_t`).
    pub mean_talkspurt: SimDuration,
    /// Mean silence duration (`t_s`).
    pub mean_silence: SimDuration,
    /// Speech packetisation period (one packet per period during talkspurts).
    pub packet_period: SimDuration,
    /// Delivery deadline of each voice packet, measured from generation.
    pub deadline: SimDuration,
}

impl Default for VoiceSourceConfig {
    fn default() -> Self {
        VoiceSourceConfig {
            mean_talkspurt: SimDuration::from_millis(1_000),
            mean_silence: SimDuration::from_millis(1_350),
            packet_period: SimDuration::from_millis(20),
            deadline: SimDuration::from_millis(20),
        }
    }
}

impl VoiceSourceConfig {
    /// The voice activity factor `t_t / (t_t + t_s)` (≈ 0.426 for the paper's
    /// defaults) — the long-run fraction of time a voice terminal talks.
    pub fn activity_factor(&self) -> f64 {
        let tt = self.mean_talkspurt.as_secs_f64();
        let ts = self.mean_silence.as_secs_f64();
        tt / (tt + ts)
    }
}

/// What a voice source did during one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VoiceActivity {
    /// A new talkspurt began at this frame boundary (the terminal must send a
    /// new transmission request).
    pub talkspurt_started: bool,
    /// The current talkspurt ended at this frame boundary (any reservation is
    /// released).
    pub talkspurt_ended: bool,
    /// A speech packet was generated at this frame boundary.
    pub packet_generated: bool,
}

/// Internal state of the on/off process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Talking until the stored frame index (exclusive).
    Talkspurt {
        until_frame: u64,
        next_packet_frame: u64,
    },
    /// Silent until the stored frame index (exclusive).
    Silence { until_frame: u64 },
}

/// A single terminal's voice source.
///
/// The source is driven frame-synchronously: the MAC loop calls
/// [`VoiceSource::on_frame_start`] exactly once per frame, in order.
#[derive(Debug, Clone)]
pub struct VoiceSource {
    config: VoiceSourceConfig,
    clock: FrameClock,
    state: State,
    frames_per_packet: u64,
    rng: Xoshiro256StarStar,
    /// Next frame index expected by `on_frame_start` (for misuse detection).
    next_frame: u64,
}

impl VoiceSource {
    /// Creates a voice source.  The initial state is drawn from the
    /// stationary distribution of the on/off process so that a scenario does
    /// not need a warm-up period just for voice activity to reach steady
    /// state.
    pub fn new(config: VoiceSourceConfig, clock: FrameClock, mut rng: Xoshiro256StarStar) -> Self {
        assert!(
            !config.packet_period.is_zero(),
            "packet period must be non-zero"
        );
        let frames_per_packet = clock.frames_per(config.packet_period);
        let start_talking = Sampler::bernoulli(&mut rng, config.activity_factor());
        let mut source = VoiceSource {
            config,
            clock,
            state: State::Silence { until_frame: 0 },
            frames_per_packet,
            rng,
            next_frame: 0,
        };
        // Draw the first state explicitly so that `talkspurt_started` is not
        // reported for terminals that begin mid-talkspurt.
        if start_talking {
            let until = source.draw_frames(config.mean_talkspurt).max(1);
            source.state = State::Talkspurt {
                until_frame: until,
                next_packet_frame: 0,
            };
        } else {
            let until = source.draw_frames(config.mean_silence).max(1);
            source.state = State::Silence { until_frame: until };
        }
        source
    }

    /// The source configuration.
    pub fn config(&self) -> &VoiceSourceConfig {
        &self.config
    }

    /// Whether the source is currently in a talkspurt.
    pub fn is_talking(&self) -> bool {
        matches!(self.state, State::Talkspurt { .. })
    }

    fn draw_frames(&mut self, mean: SimDuration) -> u64 {
        let secs = Sampler::exponential(&mut self.rng, mean.as_secs_f64());
        let frames = (secs / self.clock.frame_duration().as_secs_f64()).ceil() as u64;
        frames.max(1)
    }

    /// Advances the source across the boundary that starts frame
    /// `frame_index` and reports what happened.  Frames must be visited in
    /// ascending order; frames strictly before [`Self::next_event_frame`] may
    /// be skipped — the call is a pure no-op there (no state change, no
    /// draw), so skipping changes nothing.
    pub fn on_frame_start(&mut self, frame_index: u64) -> VoiceActivity {
        assert!(
            frame_index >= self.next_frame,
            "voice source must be driven forward in frame order"
        );
        self.next_frame = frame_index + 1;

        let mut activity = VoiceActivity::default();

        // State transition at the boundary, if the current state has expired.
        match self.state {
            State::Talkspurt { until_frame, .. } if frame_index >= until_frame => {
                let silence_frames = self.draw_frames(self.config.mean_silence);
                self.state = State::Silence {
                    until_frame: frame_index + silence_frames,
                };
                activity.talkspurt_ended = true;
            }
            State::Silence { until_frame } if frame_index >= until_frame => {
                let talk_frames = self.draw_frames(self.config.mean_talkspurt);
                self.state = State::Talkspurt {
                    until_frame: frame_index + talk_frames,
                    next_packet_frame: frame_index,
                };
                activity.talkspurt_started = true;
            }
            _ => {}
        }

        // Packet generation while talking.
        if let State::Talkspurt {
            until_frame,
            next_packet_frame,
        } = self.state
        {
            if frame_index >= next_packet_frame {
                activity.packet_generated = true;
                self.state = State::Talkspurt {
                    until_frame,
                    next_packet_frame: frame_index + self.frames_per_packet,
                };
            }
        }

        activity
    }

    /// The next frame index at which [`Self::on_frame_start`] does anything:
    /// the earlier of the pending state transition and (while talking) the
    /// next packet generation.  Calls on earlier frames are no-ops and may be
    /// skipped.
    pub fn next_event_frame(&self) -> u64 {
        match self.state {
            State::Talkspurt {
                until_frame,
                next_packet_frame,
            } => until_frame.min(next_packet_frame),
            State::Silence { until_frame } => until_frame,
        }
    }

    /// The absolute deadline for a packet generated at the start of
    /// `frame_index`.
    pub fn deadline_for(&self, frame_index: u64) -> SimTime {
        self.clock.frame_start(frame_index) + self.config.deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charisma_des::{RngStreams, StreamId};

    fn source(seed: u64) -> VoiceSource {
        let streams = RngStreams::new(seed);
        VoiceSource::new(
            VoiceSourceConfig::default(),
            FrameClock::paper_default(),
            streams.stream(StreamId::new(StreamId::DOMAIN_VOICE, 0)),
        )
    }

    #[test]
    fn activity_factor_matches_paper() {
        let f = VoiceSourceConfig::default().activity_factor();
        assert!((f - 1.0 / 2.35).abs() < 1e-9, "activity factor {f}");
    }

    #[test]
    fn long_run_talk_fraction_matches_activity_factor() {
        let mut talking_frames = 0u64;
        let total_frames = 2_000_000; // 5000 simulated seconds
        let mut s = source(1);
        for k in 0..total_frames {
            s.on_frame_start(k);
            if s.is_talking() {
                talking_frames += 1;
            }
        }
        let frac = talking_frames as f64 / total_frames as f64;
        let expected = VoiceSourceConfig::default().activity_factor();
        assert!(
            (frac - expected).abs() < 0.02,
            "talk fraction {frac} vs {expected}"
        );
    }

    #[test]
    fn packets_are_generated_every_eight_frames_during_talkspurt() {
        let mut s = source(2);
        let mut packet_frames = vec![];
        for k in 0..100_000u64 {
            let a = s.on_frame_start(k);
            if a.packet_generated {
                packet_frames.push(k);
            }
        }
        assert!(!packet_frames.is_empty());
        // Within a talkspurt consecutive packets are exactly 8 frames apart;
        // across talkspurts the gap is at least 8 frames.
        for w in packet_frames.windows(2) {
            assert!(
                w[1] - w[0] >= 8,
                "packets too close: {} then {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn mean_talkspurt_length_is_about_one_second() {
        let mut s = source(3);
        let mut spurt_lengths = vec![];
        let mut current: Option<u64> = None;
        for k in 0..4_000_000u64 {
            let a = s.on_frame_start(k);
            if a.talkspurt_started {
                current = Some(k);
            }
            if a.talkspurt_ended {
                if let Some(start) = current.take() {
                    spurt_lengths.push((k - start) as f64 * 0.0025);
                }
            }
        }
        assert!(spurt_lengths.len() > 1000, "too few talkspurts observed");
        let mean = spurt_lengths.iter().sum::<f64>() / spurt_lengths.len() as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean talkspurt {mean} s");
    }

    #[test]
    fn start_and_end_flags_alternate() {
        let mut s = source(4);
        let mut expecting_start = !s.is_talking();
        for k in 0..500_000u64 {
            let a = s.on_frame_start(k);
            if a.talkspurt_started {
                assert!(expecting_start, "unexpected talkspurt start at frame {k}");
                expecting_start = false;
            }
            if a.talkspurt_ended {
                assert!(!expecting_start, "unexpected talkspurt end at frame {k}");
                expecting_start = true;
            }
            // A frame can both end a silence and start a talkspurt but never
            // both start and end a talkspurt (minimum spurt length is 1 frame).
            assert!(!(a.talkspurt_started && a.talkspurt_ended));
        }
    }

    #[test]
    fn packet_generated_only_while_talking() {
        let mut s = source(5);
        for k in 0..200_000u64 {
            let a = s.on_frame_start(k);
            if a.packet_generated {
                assert!(s.is_talking());
            }
        }
    }

    #[test]
    #[should_panic(expected = "forward in frame order")]
    fn revisiting_a_frame_is_rejected() {
        let mut s = source(6);
        s.on_frame_start(0);
        s.on_frame_start(0);
    }

    #[test]
    fn skipping_noop_frames_matches_visiting_every_frame() {
        // Jumping straight to `next_event_frame` must leave the source in the
        // same state (same draws, same activity) as stepping every frame.
        let mut dense = source(16);
        let mut sparse = source(16);
        let mut k = 0u64;
        while k < 20_000 {
            let next = sparse.next_event_frame().max(k);
            for j in k..=next {
                let a = dense.on_frame_start(j);
                if j < next {
                    assert_eq!(a, VoiceActivity::default(), "frame {j} must be a no-op");
                }
            }
            let _ = sparse.on_frame_start(next);
            assert_eq!(dense.is_talking(), sparse.is_talking());
            assert_eq!(dense.next_event_frame(), sparse.next_event_frame());
            k = next + 1;
        }
    }

    #[test]
    fn deadline_is_twenty_ms_after_generation() {
        let s = source(7);
        let d = s.deadline_for(4);
        assert_eq!(d, SimTime::from_micros(4 * 2_500 + 20_000));
    }

    #[test]
    fn initial_state_distribution_is_roughly_stationary() {
        let talking = (0..2_000)
            .filter(|&seed| {
                let s = source(seed);
                s.is_talking()
            })
            .count();
        let frac = talking as f64 / 2_000.0;
        let expected = VoiceSourceConfig::default().activity_factor();
        assert!(
            (frac - expected).abs() < 0.05,
            "initial talk fraction {frac}"
        );
    }
}
