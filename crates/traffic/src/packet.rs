//! Identifiers shared by the traffic and MAC layers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a mobile terminal within a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TerminalId(pub u32);

impl TerminalId {
    /// The numeric index of the terminal.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for TerminalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// The service class of a terminal (the paper's two request types).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TerminalClass {
    /// Isochronous voice terminal: delay-sensitive, deadline-bound packets,
    /// allowed to reserve slots.
    Voice,
    /// File-data terminal: delay-insensitive bursty traffic, no reservation.
    Data,
}

impl TerminalClass {
    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            TerminalClass::Voice => "voice",
            TerminalClass::Data => "data",
        }
    }
}

/// Kind of an information packet (mirrors the owning terminal's class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketKind {
    /// A 20 ms speech packet with a hard delivery deadline.
    Voice,
    /// One packet of a file-data burst.
    Data,
}

impl From<TerminalClass> for PacketKind {
    fn from(c: TerminalClass) -> Self {
        match c {
            TerminalClass::Voice => PacketKind::Voice,
            TerminalClass::Data => PacketKind::Data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_id_display_and_index() {
        let id = TerminalId(17);
        assert_eq!(id.to_string(), "T17");
        assert_eq!(id.index(), 17);
    }

    #[test]
    fn class_to_packet_kind() {
        assert_eq!(PacketKind::from(TerminalClass::Voice), PacketKind::Voice);
        assert_eq!(PacketKind::from(TerminalClass::Data), PacketKind::Data);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(TerminalClass::Voice.label(), "voice");
        assert_eq!(TerminalClass::Data.label(), "data");
    }
}
