//! The constant-BER adaptive PHY (ABICM) used by CHARISMA and D-TDMA/VR.

use crate::modes::{AdaptationThresholds, TransmissionMode};
use crate::Phy;
use serde::{Deserialize, Serialize};

/// Configuration of the adaptive PHY.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptivePhyConfig {
    /// CSI adaptation thresholds.
    pub thresholds: AdaptationThresholds,
    /// Per-packet error probability maintained inside the adaptation range
    /// (the "constant BER" target expressed at packet granularity).
    pub in_range_per: f64,
    /// Per-packet error probability when a packet is nevertheless transmitted
    /// while the channel is in outage (a CSI-blind scheduler such as
    /// D-TDMA/VR will occasionally do this; CHARISMA avoids it).
    pub outage_per: f64,
    /// Implementation margin of a mode's operating point, in dB: when a mode
    /// is chosen from an announced (possibly stale) CSI, the true channel may
    /// drop this far below the mode's adaptation threshold before the error
    /// rate starts to climb (see
    /// [`AdaptivePhy::announced_packet_error_probability`]).
    pub mismatch_margin_db: f64,
    /// Slope (dB per e-fold) of the error climb once the margin is exhausted.
    pub mismatch_slope_db: f64,
}

impl Default for AdaptivePhyConfig {
    fn default() -> Self {
        AdaptivePhyConfig {
            thresholds: AdaptationThresholds::paper_default(),
            in_range_per: 5e-4,
            outage_per: 0.7,
            mismatch_margin_db: 6.0,
            mismatch_slope_db: 0.8,
        }
    }
}

/// The 6-mode variable-throughput channel-adaptive PHY.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptivePhy {
    config: AdaptivePhyConfig,
}

impl AdaptivePhy {
    /// Creates the adaptive PHY after validating the error probabilities.
    pub fn new(config: AdaptivePhyConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.in_range_per),
            "in_range_per must be a probability"
        );
        assert!(
            (0.0..=1.0).contains(&config.outage_per),
            "outage_per must be a probability"
        );
        assert!(
            config.outage_per >= config.in_range_per,
            "outage error probability must not be lower than the in-range error probability"
        );
        AdaptivePhy { config }
    }

    /// The configuration of this PHY.
    pub fn config(&self) -> &AdaptivePhyConfig {
        &self.config
    }

    /// The transmission mode selected at the given channel state.
    pub fn mode_for(&self, snr_db: f64) -> TransmissionMode {
        self.config.thresholds.select(snr_db)
    }

    /// Whether the channel is inside the adaptation range at this state.
    pub fn in_adaptation_range(&self, snr_db: f64) -> bool {
        self.mode_for(snr_db).is_active()
    }

    /// Per-packet error probability when the transmission mode was chosen
    /// from an *announced* CSI value (`announced_snr_db`, e.g. the estimate
    /// the base station held when it built the allocation schedule) but the
    /// channel has since moved to `true_snr_db`.
    ///
    /// As long as the true channel stays within the mode's implementation
    /// margin the constant-BER target still holds; once the channel falls
    /// further below the announced mode's adaptation threshold the error rate
    /// climbs smoothly towards the outage value.  Announcing a mode while the
    /// terminal is in outage always yields the outage error rate.
    pub fn announced_packet_error_probability(
        &self,
        announced_snr_db: f64,
        true_snr_db: f64,
    ) -> f64 {
        let announced_mode = self.config.thresholds.select(announced_snr_db);
        if !announced_mode.is_active() || true_snr_db.is_nan() {
            return self.config.outage_per;
        }
        // Lower adaptation threshold of the announced mode.
        let required_db = self.config.thresholds.boundaries[(announced_mode.index() - 1) as usize];
        let x = (true_snr_db - (required_db - self.config.mismatch_margin_db))
            / self.config.mismatch_slope_db;
        let climb = 1.0 / (1.0 + x.exp());
        (self.config.in_range_per + climb * self.config.outage_per).min(self.config.outage_per)
    }
}

impl Default for AdaptivePhy {
    fn default() -> Self {
        AdaptivePhy::new(AdaptivePhyConfig::default())
    }
}

impl Phy for AdaptivePhy {
    fn packets_per_slot(&self, snr_db: f64) -> f64 {
        self.mode_for(snr_db).normalized_throughput()
    }

    fn packet_error_probability(&self, snr_db: f64) -> f64 {
        if self.in_adaptation_range(snr_db) {
            self.config.in_range_per
        } else {
            self.config.outage_per
        }
    }

    fn name(&self) -> &'static str {
        "abicm-6"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charisma_des::Xoshiro256StarStar;

    #[test]
    fn capacity_follows_the_mode_table() {
        let phy = AdaptivePhy::default();
        assert_eq!(phy.packets_per_slot(-20.0), 0.0);
        assert_eq!(phy.packets_per_slot(-5.0), 0.5);
        assert_eq!(phy.packets_per_slot(0.0), 1.0);
        assert_eq!(phy.packets_per_slot(7.0), 2.0);
        assert_eq!(phy.packets_per_slot(12.0), 3.0);
        assert_eq!(phy.packets_per_slot(18.0), 4.0);
        assert_eq!(phy.packets_per_slot(30.0), 5.0);
    }

    #[test]
    fn error_probability_is_constant_inside_the_range() {
        let phy = AdaptivePhy::default();
        let pers: Vec<f64> = [-5.0, 0.0, 7.0, 12.0, 18.0, 30.0]
            .iter()
            .map(|&snr| phy.packet_error_probability(snr))
            .collect();
        assert!(pers.iter().all(|&p| p == 5e-4), "{pers:?}");
        assert_eq!(phy.packet_error_probability(-20.0), 0.7);
    }

    #[test]
    fn slots_needed_accounts_for_half_rate_mode() {
        let phy = AdaptivePhy::default();
        assert_eq!(phy.slots_needed(-5.0, 1), Some(2)); // mode 1 (½)
        assert_eq!(phy.slots_needed(0.0, 3), Some(3)); // mode 2 (1)
        assert_eq!(phy.slots_needed(30.0, 12), Some(3)); // mode 6 (5) -> ceil(12/5)
        assert_eq!(phy.slots_needed(-20.0, 1), None); // outage
    }

    #[test]
    fn average_capacity_is_roughly_twice_fixed_rate_at_operating_point() {
        // Sweep the Rayleigh-faded SNR distribution around an 18 dB mean and
        // verify the average adaptive capacity lands in the 2–3.5 packets/slot
        // band the paper implies ("twice the average offered throughput").
        let phy = AdaptivePhy::default();
        let mut rng = Xoshiro256StarStar::from_seed_u64(3);
        let n = 100_000;
        let mut acc = 0.0;
        for _ in 0..n {
            let power = -(rng.next_f64_open().ln()); // Exp(1) Rayleigh power
            let snr_db = 18.0 + 10.0 * power.log10();
            acc += phy.packets_per_slot(snr_db);
        }
        let avg = acc / n as f64;
        assert!(
            (2.0..=3.5).contains(&avg),
            "average adaptive capacity {avg}"
        );
    }

    #[test]
    fn transmit_packet_rarely_fails_in_range_and_often_fails_in_outage() {
        let phy = AdaptivePhy::default();
        let mut rng = Xoshiro256StarStar::from_seed_u64(4);
        let n = 20_000;
        let in_range_fail = (0..n)
            .filter(|_| !phy.transmit_packet(10.0, &mut rng))
            .count();
        let outage_fail = (0..n)
            .filter(|_| !phy.transmit_packet(-30.0, &mut rng))
            .count();
        assert!((in_range_fail as f64) / (n as f64) < 0.01);
        assert!((outage_fail as f64) / (n as f64) > 0.6);
    }

    #[test]
    fn announced_error_stays_low_for_small_mismatch_and_climbs_for_large() {
        let phy = AdaptivePhy::default();
        // Announced mode 4 (threshold 10 dB) with the true channel still at or
        // slightly below the estimate: error stays at the target level.
        assert!(phy.announced_packet_error_probability(12.0, 12.0) < 2e-3);
        assert!(phy.announced_packet_error_probability(12.0, 10.5) < 5e-3);
        assert!(phy.announced_packet_error_probability(12.0, 8.0) < 0.10);
        // True channel 8+ dB below the announced mode's threshold: mostly lost.
        assert!(phy.announced_packet_error_probability(12.0, 0.0) > 0.4);
        // Announcement made while in outage: always the outage error rate.
        assert_eq!(phy.announced_packet_error_probability(-20.0, 15.0), 0.7);
    }

    #[test]
    fn announced_error_is_monotone_in_true_snr() {
        let phy = AdaptivePhy::default();
        let mut last = 1.0;
        let mut snr = -20.0;
        while snr < 30.0 {
            let p = phy.announced_packet_error_probability(18.0, snr);
            assert!(
                p <= last + 1e-12,
                "error increased with improving channel at {snr} dB"
            );
            assert!((0.0..=1.0).contains(&p));
            last = p;
            snr += 0.5;
        }
    }

    #[test]
    #[should_panic(expected = "must be a probability")]
    fn invalid_per_rejected() {
        let _ = AdaptivePhy::new(AdaptivePhyConfig {
            in_range_per: 1.5,
            ..Default::default()
        });
    }

    #[test]
    #[should_panic(expected = "must not be lower")]
    fn outage_per_must_dominate() {
        let _ = AdaptivePhy::new(AdaptivePhyConfig {
            in_range_per: 0.5,
            outage_per: 0.1,
            ..Default::default()
        });
    }
}
