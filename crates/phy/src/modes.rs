//! Transmission modes and CSI adaptation thresholds of the 6-mode ABICM
//! scheme (paper Section 4.2 and Fig. 7).
//!
//! Modes carry a *normalised throughput* — the number of information bits per
//! modulation symbol — ranging from ½ (heavy redundancy, robust) to 5 (dense
//! constellation, fragile).  The scheme operates in the *constant-BER* mode:
//! the adaptation thresholds are chosen so that, inside the adaptation range,
//! every mode achieves the same target bit-error rate, and throughput is what
//! varies with the channel.  Below the lowest threshold the target BER cannot
//! be maintained at any available mode; the paper calls this the mode-0 /
//! adaptation-range-exceeded region and we model it as an outage state.

use serde::{Deserialize, Serialize};

/// A transmission mode of the adaptive PHY.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TransmissionMode {
    /// Channel below the adaptation range: the target BER cannot be met.
    Outage,
    /// Normalised throughput ½ bit/symbol.
    Mode1,
    /// Normalised throughput 1 bit/symbol.
    Mode2,
    /// Normalised throughput 2 bits/symbol.
    Mode3,
    /// Normalised throughput 3 bits/symbol.
    Mode4,
    /// Normalised throughput 4 bits/symbol.
    Mode5,
    /// Normalised throughput 5 bits/symbol.
    Mode6,
}

impl TransmissionMode {
    /// All modes in increasing order of throughput (excluding outage).
    pub const ACTIVE_MODES: [TransmissionMode; 6] = [
        TransmissionMode::Mode1,
        TransmissionMode::Mode2,
        TransmissionMode::Mode3,
        TransmissionMode::Mode4,
        TransmissionMode::Mode5,
        TransmissionMode::Mode6,
    ];

    /// Normalised throughput in information bits per modulation symbol.
    /// The reference slot is dimensioned so that a throughput of 1 carries
    /// exactly one information packet, so this value doubles as "packets per
    /// information slot".
    pub fn normalized_throughput(self) -> f64 {
        match self {
            TransmissionMode::Outage => 0.0,
            TransmissionMode::Mode1 => 0.5,
            TransmissionMode::Mode2 => 1.0,
            TransmissionMode::Mode3 => 2.0,
            TransmissionMode::Mode4 => 3.0,
            TransmissionMode::Mode5 => 4.0,
            TransmissionMode::Mode6 => 5.0,
        }
    }

    /// Index used in announcements (0 = outage, 1–6 = active modes).
    pub fn index(self) -> u8 {
        match self {
            TransmissionMode::Outage => 0,
            TransmissionMode::Mode1 => 1,
            TransmissionMode::Mode2 => 2,
            TransmissionMode::Mode3 => 3,
            TransmissionMode::Mode4 => 4,
            TransmissionMode::Mode5 => 5,
            TransmissionMode::Mode6 => 6,
        }
    }

    /// Whether the mode can carry information at the target BER.
    pub fn is_active(self) -> bool {
        self != TransmissionMode::Outage
    }
}

/// CSI adaptation thresholds `{η_0, η_1, …, η_5}` (in dB of instantaneous
/// SNR): mode `q` is selected when the CSI falls in `[η_{q−1}, η_q)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptationThresholds {
    /// Lower SNR boundary (dB) of each active mode, in increasing order.
    /// `boundaries[0]` is the edge of the adaptation range: below it the PHY
    /// is in outage.
    pub boundaries: [f64; 6],
}

impl AdaptationThresholds {
    /// Default thresholds used throughout the reproduction.
    ///
    /// They are spaced ~6 dB apart, which is the spacing needed to keep the
    /// BER constant when the constellation density doubles, and place a
    /// terminal at the default 18 dB mean SNR in the middle of the adaptation
    /// range (mode 3–4), giving the ≈2× average throughput advantage over the
    /// fixed-rate PHY that the paper quotes for D-TDMA/VR.
    pub fn paper_default() -> Self {
        AdaptationThresholds {
            boundaries: [-8.0, -2.0, 4.0, 10.0, 16.0, 22.0],
        }
    }

    /// Creates thresholds after validating monotonicity.
    pub fn new(boundaries: [f64; 6]) -> Self {
        for w in boundaries.windows(2) {
            assert!(
                w[0] < w[1],
                "adaptation thresholds must be strictly increasing: {boundaries:?}"
            );
        }
        AdaptationThresholds { boundaries }
    }

    /// Selects the transmission mode for a CSI value (instantaneous SNR, dB).
    pub fn select(&self, snr_db: f64) -> TransmissionMode {
        if snr_db.is_nan() || snr_db < self.boundaries[0] {
            return TransmissionMode::Outage;
        }
        let mut mode = TransmissionMode::Mode1;
        for (i, &b) in self.boundaries.iter().enumerate().skip(1) {
            if snr_db >= b {
                mode = TransmissionMode::ACTIVE_MODES[i];
            } else {
                break;
            }
        }
        mode
    }

    /// The lower edge of the adaptation range (outage threshold), dB.
    pub fn outage_threshold_db(&self) -> f64 {
        self.boundaries[0]
    }
}

impl Default for AdaptationThresholds {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughputs_match_the_papers_range() {
        let tps: Vec<f64> = TransmissionMode::ACTIVE_MODES
            .iter()
            .map(|m| m.normalized_throughput())
            .collect();
        assert_eq!(tps, vec![0.5, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(TransmissionMode::Outage.normalized_throughput(), 0.0);
    }

    #[test]
    fn mode_indices_are_stable() {
        assert_eq!(TransmissionMode::Outage.index(), 0);
        assert_eq!(TransmissionMode::Mode6.index(), 6);
    }

    #[test]
    fn selection_is_monotone_in_snr() {
        let th = AdaptationThresholds::paper_default();
        let mut last = TransmissionMode::Outage;
        let mut snr = -20.0;
        while snr <= 40.0 {
            let m = th.select(snr);
            assert!(
                m >= last,
                "mode decreased from {last:?} to {m:?} at {snr} dB"
            );
            last = m;
            snr += 0.25;
        }
        assert_eq!(last, TransmissionMode::Mode6);
    }

    #[test]
    fn selection_boundaries_are_inclusive_on_the_left() {
        let th = AdaptationThresholds::paper_default();
        assert_eq!(th.select(-8.0), TransmissionMode::Mode1);
        assert_eq!(th.select(-8.0001), TransmissionMode::Outage);
        assert_eq!(th.select(-2.0), TransmissionMode::Mode2);
        assert_eq!(th.select(22.0), TransmissionMode::Mode6);
        assert_eq!(th.select(21.999), TransmissionMode::Mode5);
    }

    #[test]
    fn nan_csi_is_treated_as_outage() {
        let th = AdaptationThresholds::paper_default();
        assert_eq!(th.select(f64::NAN), TransmissionMode::Outage);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_thresholds_rejected() {
        let _ = AdaptationThresholds::new([0.0, 1.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn typical_operating_point_sits_mid_range() {
        // 18 dB mean SNR minus the ~2.5 dB average Rayleigh penalty should be
        // mode 4 — the middle of the range — so adaptation has room both ways.
        let th = AdaptationThresholds::paper_default();
        assert_eq!(th.select(15.5), TransmissionMode::Mode4);
    }

    #[test]
    fn mode_is_active_helper() {
        assert!(!TransmissionMode::Outage.is_active());
        assert!(TransmissionMode::Mode1.is_active());
    }
}
