//! # charisma-phy — variable-throughput channel-adaptive physical layer
//!
//! Reproduces the physical-layer abstraction of Section 4.2 of the paper:
//!
//! * [`modes`] — the 6-mode adaptive bit-interleaved trellis-coded-modulation
//!   (ABICM) scheme: transmission modes with normalised throughput ½–5
//!   bits/symbol selected by CSI adaptation thresholds, plus the "mode-0"
//!   outage region where the target BER can no longer be maintained
//!   (paper Fig. 7).
//! * [`abicm`] — the constant-BER adaptive PHY used by CHARISMA and
//!   D-TDMA/VR: given the CSI it reports how many packets an information slot
//!   can carry and the per-packet error probability.
//! * [`fixed`] — the fixed-throughput PHY used by the non-adaptive baselines
//!   (D-TDMA/FR, RAMA, RMAV, DRMA): every slot carries exactly one packet and
//!   the error probability rises sharply once the channel falls below the
//!   (fixed) design threshold.
//!
//! Both PHYs implement the [`Phy`] trait so the MAC layer can be written once
//! and parameterised by the physical layer, mirroring Fig. 3 of the paper.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod abicm;
pub mod fixed;
pub mod modes;

pub use abicm::{AdaptivePhy, AdaptivePhyConfig};
pub use fixed::{FixedPhy, FixedPhyConfig};
pub use modes::{AdaptationThresholds, TransmissionMode};

use charisma_des::Xoshiro256StarStar;

/// The interface the MAC layer sees of a physical layer.
///
/// The trait captures exactly the two quantities the uplink protocols need:
/// how many information packets a slot can carry at a given channel state
/// (the *offered throughput*) and how likely a transmitted packet is to be
/// corrupted (the *transmission error*).
pub trait Phy {
    /// Number of information packets one information slot can carry at the
    /// given channel state.  `0.0` means the channel is in outage for this
    /// PHY; `0.5` means a packet needs two slots.
    fn packets_per_slot(&self, snr_db: f64) -> f64;

    /// Probability that a single packet transmitted at this channel state is
    /// received in error.
    fn packet_error_probability(&self, snr_db: f64) -> f64;

    /// Number of information slots needed to carry `packets` packets at the
    /// given channel state, or `None` if the channel is in outage (no finite
    /// number of slots achieves the target error rate).
    fn slots_needed(&self, snr_db: f64, packets: u32) -> Option<u32> {
        if packets == 0 {
            return Some(0);
        }
        let cap = self.packets_per_slot(snr_db);
        if cap <= 0.0 {
            None
        } else {
            Some(((packets as f64) / cap).ceil() as u32)
        }
    }

    /// Simulates the transmission of one packet: returns `true` when the
    /// packet is delivered without error.
    fn transmit_packet(&self, snr_db: f64, rng: &mut Xoshiro256StarStar) -> bool {
        charisma_des::Sampler::bernoulli(rng, 1.0 - self.packet_error_probability(snr_db))
    }

    /// A short human-readable name used in reports ("abicm-6" / "fixed").
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    struct Half;
    impl Phy for Half {
        fn packets_per_slot(&self, _snr_db: f64) -> f64 {
            0.5
        }
        fn packet_error_probability(&self, _snr_db: f64) -> f64 {
            0.0
        }
        fn name(&self) -> &'static str {
            "half"
        }
    }

    struct Outage;
    impl Phy for Outage {
        fn packets_per_slot(&self, _snr_db: f64) -> f64 {
            0.0
        }
        fn packet_error_probability(&self, _snr_db: f64) -> f64 {
            1.0
        }
        fn name(&self) -> &'static str {
            "outage"
        }
    }

    #[test]
    fn default_slots_needed_rounds_up() {
        let phy = Half;
        assert_eq!(phy.slots_needed(0.0, 0), Some(0));
        assert_eq!(phy.slots_needed(0.0, 1), Some(2));
        assert_eq!(phy.slots_needed(0.0, 3), Some(6));
    }

    #[test]
    fn outage_phy_reports_no_finite_slot_count() {
        let phy = Outage;
        assert_eq!(phy.slots_needed(0.0, 1), None);
        assert_eq!(phy.slots_needed(0.0, 0), Some(0));
    }

    #[test]
    fn transmit_packet_respects_error_probability_extremes() {
        let mut rng = charisma_des::Xoshiro256StarStar::from_seed_u64(1);
        assert!(Half.transmit_packet(0.0, &mut rng));
        assert!(!Outage.transmit_packet(0.0, &mut rng));
    }
}
