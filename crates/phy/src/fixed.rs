//! The fixed-throughput PHY used by the non-adaptive baseline protocols.
//!
//! D-TDMA/FR, RAMA, RMAV and DRMA are specified over a conventional physical
//! layer: a single coding/modulation mode dimensioned so that one information
//! slot carries exactly one packet.  Because the code rate cannot adapt, the
//! error probability is small only while the channel stays above the design
//! threshold; in a deep fade the packet is effectively lost.  We model the
//! packet error probability as a logistic function of the instantaneous SNR
//! around the design threshold, with a small residual error floor above it —
//! the same qualitative shape as Fig. 7(a) of the paper outside the
//! adaptation range.

use crate::Phy;
use serde::{Deserialize, Serialize};

/// Configuration of the fixed-rate PHY.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FixedPhyConfig {
    /// SNR (dB) at which the packet error probability is 50 %.  Below this
    /// the fixed code is overwhelmed; above it errors fall off quickly.
    pub design_threshold_db: f64,
    /// Slope of the logistic error curve (dB per e-fold).  Smaller is steeper.
    pub slope_db: f64,
    /// Residual per-packet error probability far above the threshold.
    pub residual_per: f64,
}

impl Default for FixedPhyConfig {
    fn default() -> Self {
        // −10 dB design threshold: with the default 18 dB mean SNR the fade
        // margin is ~28 dB, giving a low-load error floor of a few tenths of a
        // percent — visible in the loss curves (as in the paper) but below
        // the 1 % QoS threshold.
        FixedPhyConfig {
            design_threshold_db: -10.0,
            slope_db: 1.5,
            residual_per: 1e-3,
        }
    }
}

/// Fixed single-mode physical layer: one packet per information slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FixedPhy {
    config: FixedPhyConfig,
}

impl FixedPhy {
    /// Creates the fixed PHY after validating the configuration.
    pub fn new(config: FixedPhyConfig) -> Self {
        assert!(config.slope_db > 0.0, "logistic slope must be positive");
        assert!(
            (0.0..=1.0).contains(&config.residual_per),
            "residual_per must be a probability"
        );
        FixedPhy { config }
    }

    /// The configuration of this PHY.
    pub fn config(&self) -> &FixedPhyConfig {
        &self.config
    }
}

impl Default for FixedPhy {
    fn default() -> Self {
        FixedPhy::new(FixedPhyConfig::default())
    }
}

impl Phy for FixedPhy {
    fn packets_per_slot(&self, _snr_db: f64) -> f64 {
        1.0
    }

    fn packet_error_probability(&self, snr_db: f64) -> f64 {
        if snr_db.is_nan() {
            return 1.0;
        }
        let x = (snr_db - self.config.design_threshold_db) / self.config.slope_db;
        let logistic = 1.0 / (1.0 + x.exp());
        (logistic + self.config.residual_per).min(1.0)
    }

    fn name(&self) -> &'static str {
        "fixed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_always_one_packet_per_slot() {
        let phy = FixedPhy::default();
        for snr in [-40.0, -5.0, 0.0, 20.0, 60.0] {
            assert_eq!(phy.packets_per_slot(snr), 1.0);
            assert_eq!(phy.slots_needed(snr, 7), Some(7));
        }
    }

    #[test]
    fn error_probability_is_monotone_decreasing_in_snr() {
        let phy = FixedPhy::default();
        let mut last = 1.0;
        let mut snr = -40.0;
        while snr <= 40.0 {
            let p = phy.packet_error_probability(snr);
            assert!(p <= last + 1e-12, "PER increased at {snr} dB");
            assert!((0.0..=1.0).contains(&p));
            last = p;
            snr += 0.5;
        }
    }

    #[test]
    fn half_error_at_design_threshold_and_floor_far_above() {
        let phy = FixedPhy::default();
        let at_threshold = phy.packet_error_probability(-10.0);
        assert!(
            (at_threshold - 0.5).abs() < 0.01,
            "PER at threshold {at_threshold}"
        );
        let far_above = phy.packet_error_probability(30.0);
        assert!((far_above - 1e-3).abs() < 1e-6, "floor {far_above}");
        let far_below = phy.packet_error_probability(-40.0);
        assert!(far_below > 0.99);
    }

    #[test]
    fn expected_error_floor_under_rayleigh_fading_is_below_one_percent() {
        // The fade margin (18 dB mean − (−5 dB threshold) = 23 dB) must keep
        // the average packet error rate under the 1 % voice QoS threshold, as
        // required for the baselines to be viable at low load (Fig. 11).
        let phy = FixedPhy::default();
        let mut rng = charisma_des::Xoshiro256StarStar::from_seed_u64(9);
        let n = 200_000;
        let mut acc = 0.0;
        for _ in 0..n {
            let power = -(rng.next_f64_open().ln());
            let snr_db = 18.0 + 10.0 * power.log10();
            acc += phy.packet_error_probability(snr_db);
        }
        let avg = acc / n as f64;
        assert!(avg < 0.01, "average fixed-PHY PER {avg}");
        assert!(avg > 1e-4, "fixed-PHY PER implausibly low {avg}");
    }

    #[test]
    fn nan_is_an_error() {
        assert_eq!(FixedPhy::default().packet_error_probability(f64::NAN), 1.0);
    }

    #[test]
    #[should_panic(expected = "slope must be positive")]
    fn invalid_slope_rejected() {
        let _ = FixedPhy::new(FixedPhyConfig {
            slope_db: 0.0,
            ..Default::default()
        });
    }
}
